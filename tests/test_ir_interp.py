"""Unit and property tests for the IR interpreter's exact semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EvaluationError
from repro.ir import builder as B
from repro.ir import expr as E
from repro.ir.interp import BufferView, Environment, evaluate, evaluate_vector
from repro.types import I16, I8, U16, U8

from conftest import env_with


def u8v(offset=0, lanes=4):
    return B.load("in", offset, lanes, U8)


class TestBufferView:
    def test_read_relative_to_origin(self):
        view = BufferView([10, 11, 12, 13, 14], U8, origin=2)
        assert view.read(-1, 3) == (11, 12, 13)

    def test_read_strided(self):
        view = BufferView(list(range(10)), U8, origin=0)
        assert view.read(1, 3, stride=2) == (1, 3, 5)

    def test_out_of_range(self):
        view = BufferView([1, 2, 3], U8, origin=0)
        with pytest.raises(EvaluationError):
            view.read(2, 4)

    def test_values_wrapped_to_elem(self):
        view = BufferView([300, -1], U8, origin=0)
        assert view.read(0, 2) == (44, 255)


class TestEvaluate:
    def test_load(self, small_env):
        assert evaluate(u8v(0), small_env) == (8, 9, 10, 11)

    def test_scalar_load(self, small_env):
        assert evaluate(B.load("in", 0, 1, U8), small_env) == 8

    def test_unbound_buffer(self):
        with pytest.raises(EvaluationError):
            evaluate(u8v(), Environment())

    def test_broadcast(self, small_env):
        assert evaluate(B.broadcast(7, 4, U8), small_env) == (7, 7, 7, 7)

    def test_scalar_var(self):
        env = Environment(scalars={"k": 300})
        assert evaluate(E.ScalarVar("k", U8), env) == 44

    def test_add_wraps(self):
        env = env_with(data=[250, 250, 250, 250], origin=0)
        e = u8v() + 10
        assert evaluate(e, env) == (4, 4, 4, 4)

    def test_mul_wraps_signed(self):
        env = env_with(data=[100] * 4, elem=I8, origin=0)
        e = B.load("in", 0, 4, I8) * 3
        assert evaluate(e, env) == (I8.wrap(300),) * 4

    def test_div_by_zero_is_zero(self):
        env = env_with(data=[10] * 4, origin=0)
        e = u8v() // 0
        assert evaluate(e, env) == (0, 0, 0, 0)

    def test_div_floor_for_signed(self):
        env = env_with(data=[-7] * 4, elem=I8, origin=0)
        e = B.load("in", 0, 4, I8) // 2
        assert evaluate(e, env) == (-4, -4, -4, -4)

    def test_mod_euclidean_like(self):
        env = env_with(data=[-7] * 4, elem=I8, origin=0)
        e = B.load("in", 0, 4, I8) % 4
        assert evaluate(e, env) == (1, 1, 1, 1)  # python floor-mod semantics

    def test_min_max(self, small_env):
        e = B.minimum(u8v(0), u8v(1))
        assert evaluate(e, small_env) == (8, 9, 10, 11)
        e = B.maximum(u8v(0), u8v(1))
        assert evaluate(e, small_env) == (9, 10, 11, 12)

    def test_absd(self):
        env = env_with(data=[5, 200, 7, 9, 10, 10, 3, 250], origin=0)
        e = B.absd(u8v(0), u8v(4))
        assert evaluate(e, env) == (5, 190, 4, 241)

    def test_shifts_mask_amount(self):
        env = env_with(data=[1] * 4, origin=0)
        # a shift of 8 on u8 masks to 0
        e = B.shl(u8v(), 8)
        assert evaluate(e, env) == (1, 1, 1, 1)

    def test_shr_arithmetic_for_signed(self):
        env = env_with(data=[-8] * 4, elem=I8, origin=0)
        e = B.shr(B.load("in", 0, 4, I8), 1)
        assert evaluate(e, env) == (-4, -4, -4, -4)

    def test_cast_truncates(self):
        env = env_with(data=[0x1FF] * 4, elem=U16, origin=0)
        e = B.cast(U8, B.load("in", 0, 4, U16))
        assert evaluate(e, env) == (255, 255, 255, 255)

    def test_sat_cast_clamps(self):
        env = env_with(data=[0x1FF] * 4, elem=U16, origin=0)
        e = B.sat_cast(U8, B.load("in", 0, 4, U16))
        assert evaluate(e, env) == (255,) * 4
        env = env_with(data=[-5] * 4, elem=I16, origin=0)
        e = B.sat_cast(U8, B.load("in", 0, 4, I16))
        assert evaluate(e, env) == (0,) * 4

    def test_select(self):
        env = env_with(data=[1, 5, 3, 7, 4, 4, 4, 4], origin=0)
        e = B.select(B.gt(u8v(0), u8v(4)), u8v(0), u8v(4))
        assert evaluate(e, env) == (4, 5, 4, 7)

    def test_evaluate_vector_normalizes_scalar(self, small_env):
        assert evaluate_vector(B.const(3, U8), small_env) == (3,)


@given(st.lists(st.integers(0, 255), min_size=4, max_size=4),
       st.lists(st.integers(0, 255), min_size=4, max_size=4))
def test_absd_equals_max_minus_min(a_vals, b_vals):
    env = env_with(data=a_vals + b_vals, origin=0)
    absd = evaluate(B.absd(u8v(0), u8v(4)), env)
    mx = evaluate(B.maximum(u8v(0), u8v(4)), env)
    mn = evaluate(B.minimum(u8v(0), u8v(4)), env)
    assert absd == tuple(x - y for x, y in zip(mx, mn))


@given(st.lists(st.integers(0, 255), min_size=4, max_size=4),
       st.integers(0, 255))
def test_add_commutes_with_broadcast(vals, k):
    env = env_with(data=vals, origin=0)
    left = evaluate(u8v() + k, env)
    right = evaluate(k + u8v(), env)
    assert left == right
