"""Tests for the repro.targets interface and HVX byte-compatibility.

The refactor that introduced :class:`repro.targets.TargetDescription`
must leave the HVX path byte-identical: same synthesis verdicts, same
counterexample order, same canonical cache keys.  The proof is a disk
verdict store generated *before* the refactor
(``tests/fixtures/prerefactor_store``): warm-loading it must serve every
oracle query from cache, with zero misses and zero new entries.
"""

from __future__ import annotations

import pathlib
import shutil

import pytest

import repro.workloads as workloads
from repro.errors import ReproError
from repro.neon import semantics as _neon_semantics  # noqa: F401
from repro.pipeline import compile_pipeline
from repro.synthesis.sketch import AbstractPairWindow, AbstractWindow
from repro.targets import (
    TARGET_NAMES,
    get_target,
    machine_families,
    machine_family_of,
    nodes as N,
    resolve_target,
)
from repro.types import U8

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestRegistry:
    def test_registered_targets(self):
        assert TARGET_NAMES == ("hvx", "neon")
        hvx, neon = get_target("hvx"), get_target("neon")
        assert (hvx.vbytes, neon.vbytes) == (128, 16)
        assert hvx.prefix == "" and neon.prefix == "neon."

    def test_instances_are_memoized(self):
        assert get_target("hvx") is get_target("hvx")

    def test_resolve(self):
        assert resolve_target(None).name == "hvx"
        assert resolve_target("neon").name == "neon"
        tgt = get_target("neon")
        assert resolve_target(tgt) is tgt

    def test_unknown_target_raises(self):
        with pytest.raises(ReproError):
            get_target("sse42")

    def test_machine_families(self):
        assert set(machine_families()) == {"hvx", "neon"}


class TestFamilyDispatch:
    def test_neon_prefix_owns_neon_instrs(self):
        ld = N.HvxLoad("in", 0, 16, U8)
        instr = N.HvxInstr("neon.vadd", (ld, ld))
        assert machine_family_of(instr) == "neon"

    def test_shared_nodes_belong_to_hvx(self):
        # Loads/splats inside a Neon tree lower through the target-neutral
        # HVX builders.
        assert machine_family_of(N.HvxLoad("in", 0, 16, U8)) == "hvx"

    def test_ir_expressions_have_no_machine_family(self):
        from repro.ir import builder as B

        assert machine_family_of(B.load("in", 0, 16, U8)) is None


class TestSwizzleGrammars:
    def test_neon_unaligned_window_is_a_vext_splice(self):
        w = AbstractWindow("in", 3, 16, U8, 1)
        realized = list(get_target("neon").realizations(w))
        assert len(realized) == 1
        (r,) = realized
        assert isinstance(r, N.HvxInstr) and r.op == "neon.vext"
        assert r.imms == (3,)
        assert all(isinstance(c, N.HvxLoad) and c.offset % 16 == 0
                   for c in r.children)

    def test_neon_aligned_window_is_one_load(self):
        w = AbstractWindow("in", 16, 16, U8, 1)
        realized = list(get_target("neon").realizations(w))
        assert realized == [N.HvxLoad("in", 16, 16, U8)]

    def test_hvx_unaligned_window_offers_vmemu_first(self):
        w = AbstractWindow("in", 3, 128, U8, 1)
        realized = list(get_target("hvx").realizations(w))
        assert isinstance(realized[0], N.HvxLoad)
        assert not realized[0].aligned

    def test_neon_pair_window_is_free_pairing(self):
        w = AbstractPairWindow("in", 0, 32, U8)
        for r in get_target("neon").realizations(w):
            assert r.op == "neon.vpair"

    def test_neon_strided_window_deinterleaves_with_vuzp(self):
        w = AbstractWindow("in", 0, 16, U8, 2)
        ops = set()
        for r in get_target("neon").realizations(w):
            ops.update(n.op for n in r if isinstance(n, N.HvxInstr))
        assert {"neon.vuzp", "neon.vpair"} <= ops


class TestCostModels:
    def test_neon_unaligned_load_is_not_penalized(self):
        from repro.hvx.cost import cost_of as hvx_cost
        from repro.neon.cost import cost_of as neon_cost

        unaligned = N.HvxLoad("in", 3, 16, U8)
        assert neon_cost(unaligned).loads == 1
        # HVX charges double for vmemu (same node shape, different model)
        assert hvx_cost(unaligned).loads == 2

    def test_cost_orders_vext_above_plain_load(self):
        from repro.neon.cost import cost_of

        ld = N.HvxLoad("in", 0, 16, U8)
        vext = N.HvxInstr("neon.vext", (ld, N.HvxLoad("in", 16, 16, U8)),
                          (3,))
        assert cost_of(ld).key < cost_of(vext).key


class TestMachineModels:
    def test_measure_resolves_machine_from_target(self):
        from repro.sim.machine import DEFAULT_MACHINE, NEON_MACHINE
        from repro.sim.runner import measure

        wl = workloads.get("mul")
        neon = compile_pipeline(wl.build(), target="neon")
        assert measure(neon).total == measure(neon,
                                              machine=NEON_MACHINE).total
        hvx = compile_pipeline(wl.build())
        assert measure(hvx).total == measure(hvx,
                                             machine=DEFAULT_MACHINE).total

    def test_neon_machine_shape(self):
        from repro.sim.machine import NEON_MACHINE

        assert NEON_MACHINE.vbytes == 16
        assert NEON_MACHINE.slots == 2
        assert NEON_MACHINE.cap("mpy") == 1


class TestScheduleRescaling:
    def test_vectorize_directives_scale_to_target_width(self):
        wl = workloads.get("box_blur")
        hvx = compile_pipeline(wl.build())
        neon = compile_pipeline(wl.build(), target="neon")
        for sa, sb in zip(hvx.lowered.stages, neon.lowered.stages):
            assert sa.lanes == 8 * sb.lanes  # 128-byte vs 16-byte vectors


class TestHvxByteCompatibility:
    def test_prerefactor_store_warm_loads_with_zero_misses(self, tmp_path):
        """PR-1/2 disk stores must keep warm-loading after the refactor.

        The fixture was generated by ``repro compile box_blur`` before
        ``repro.targets`` existed.  Identical canonical cache keys mean
        every query hits; identical verdict/counterexample order means
        no new entries are appended on flush.
        """
        store = tmp_path / "store"
        shutil.copytree(FIXTURES / "prerefactor_store", store)
        before = (store / "oracle.jsonl").read_bytes()

        compiled = compile_pipeline(workloads.get("box_blur").build(),
                                    cache_dir=str(store))
        stats = compiled.stats
        assert stats.total_queries > 0
        assert stats.total_cache_misses == 0, (
            f"{stats.total_cache_misses} oracle queries missed the "
            f"pre-refactor verdict store — cache keys changed"
        )
        assert (store / "oracle.jsonl").read_bytes() == before

    def test_hvx_import_ban_in_target_generic_modules(self):
        """The tentpole's acceptance bar: the synthesis core is
        target-generic — no ``repro.hvx`` imports in the refactored
        modules (HVX specifics live behind ``repro.targets.hvx``)."""
        import re

        imports_hvx = re.compile(
            r"^\s*(from\s+[.\w]*\bhvx\b|import\s+[.\w]*\bhvx\b)"
        )
        src = pathlib.Path(__file__).parent.parent / "src" / "repro"
        for rel in ("pipeline.py", "synthesis/sketch.py",
                    "synthesis/swizzle_synth.py"):
            for line in (src / rel).read_text().splitlines():
                assert not imports_hvx.match(line), (
                    f"{rel} still imports repro.hvx: {line.strip()!r}"
                )


class TestWorkerSemanticsRegistration:
    def test_ensure_semantics_registers_all_targets(self):
        from repro.hvx.isa import all_instructions
        from repro.targets import ensure_semantics

        ensure_semantics()
        names = set(all_instructions())
        assert "vadd" in names or any(not n.startswith("neon.")
                                      for n in names)
        assert any(n.startswith("neon.") for n in names)

    def test_parallel_jobs_handle_neon_candidates(self):
        # Worker processes unpickle Neon instructions and must find their
        # semantics registered.
        compiled = compile_pipeline(workloads.get("mul").build(),
                                    target="neon", jobs=2)
        assert not compiled.degraded
