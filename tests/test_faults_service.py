"""Service resilience: circuit breaker, load shedding, client retry.

Scheduler tests drive :class:`JobScheduler` directly with stub compile
functions (crashes are untyped exceptions, typed failures are healthy);
HTTP tests boot the real server and assert the 503 + ``Retry-After``
shedding contract and the client's transient-retry behaviour.
"""

import json
import threading
import time
import urllib.request

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro import faults
from repro.errors import (
    CircuitOpenError,
    ProtocolError,
    ServiceError,
    ServiceUnavailable,
)
from repro.faults import FaultPlan, FaultRule, RetryPolicy
from repro.reporting import job_summary, service_summary
from repro.service import CompileRequest, CompileServer, ServiceClient
from repro.service.protocol import JOB_DONE, JOB_FAILED
from repro.service.scheduler import CompileResult, JobScheduler


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def quick_compile(request, cancel, cache):
    return CompileResult(workload=request.workload, backend=request.backend,
                         total_cycles=1)


def crash_compile(request, cancel, cache):
    raise RuntimeError("synthesis exploded")  # untyped: a real crash


def typed_failure_compile(request, cancel, cache):
    raise ProtocolError("bad request, healthy worker")


def distinct_requests(n):
    return [CompileRequest(workload="mul", width=64 + i) for i in range(n)]


def make_scheduler(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("compile_fn", quick_compile)
    return JobScheduler(**kwargs)


class TestSchedulerBreaker:
    def test_consecutive_crashes_trip_and_shed(self):
        sched = make_scheduler(compile_fn=crash_compile, breaker_threshold=2)
        try:
            for request in distinct_requests(2):
                job, _ = sched.submit(request)
                assert sched.wait(job.id, timeout=5).state == JOB_FAILED
            with pytest.raises(CircuitOpenError) as err:
                sched.submit(CompileRequest(workload="mul", width=999))
            assert err.value.retry_after_s > 0
            metrics = sched.metrics.as_dict()
            assert metrics["repro_breaker_state"] == 2  # open
            assert metrics["repro_jobs_shed_total"] == 1
            assert metrics["repro_jobs_rejected_total"] == 1
        finally:
            sched.shutdown(drain=False)

    def test_typed_failures_never_trip(self):
        sched = make_scheduler(compile_fn=typed_failure_compile,
                               breaker_threshold=1)
        try:
            job, _ = sched.submit(CompileRequest(workload="mul"))
            assert sched.wait(job.id, timeout=5).state == JOB_FAILED
            # A typed failure proves the worker ran fine: still admitting.
            job, _ = sched.submit(CompileRequest(workload="mul", width=70))
            sched.wait(job.id, timeout=5)
            assert sched.metrics.as_dict()["repro_breaker_state"] == 0
        finally:
            sched.shutdown(drain=False)

    def test_half_open_probe_recovers(self):
        calls = {"n": 0}
        healthy = threading.Event()

        def flaky(request, cancel, cache):
            calls["n"] += 1
            if not healthy.is_set():
                raise RuntimeError("still broken")
            return quick_compile(request, cancel, cache)

        sched = make_scheduler(compile_fn=flaky, breaker_threshold=1,
                               breaker_cooldown_s=0.1)
        try:
            job, _ = sched.submit(CompileRequest(workload="mul"))
            sched.wait(job.id, timeout=5)
            with pytest.raises(CircuitOpenError):
                sched.submit(CompileRequest(workload="mul", width=70))
            healthy.set()
            time.sleep(0.15)  # past the cooldown: half-open
            probe, _ = sched.submit(CompileRequest(workload="mul", width=71))
            assert sched.wait(probe.id, timeout=5).state == JOB_DONE
            # Probe succeeded: breaker closed, admission restored.
            job, _ = sched.submit(CompileRequest(workload="mul", width=72))
            assert sched.wait(job.id, timeout=5).state == JOB_DONE
            assert sched.metrics.as_dict()["repro_breaker_state"] == 0
        finally:
            sched.shutdown(drain=False)

    def test_degraded_results_counted_and_flagged(self):
        def degraded_compile(request, cancel, cache):
            return CompileResult(workload=request.workload,
                                 backend=request.backend,
                                 total_cycles=9, fallbacks=1, degraded=True)

        sched = make_scheduler(compile_fn=degraded_compile)
        try:
            job, _ = sched.submit(CompileRequest(workload="mul"))
            view = sched.wait(job.id, timeout=5).view()
            assert view.state == JOB_DONE
            assert view.degraded
            assert "(degraded)" in job_summary(view)
            assert sched.metrics.as_dict()["repro_degraded_jobs_total"] == 1
        finally:
            sched.shutdown(drain=False)

    def test_injected_scheduler_crash_counts_as_failure(self):
        sched = make_scheduler(breaker_threshold=1)
        try:
            with faults.injected(FaultPlan(rules=[
                FaultRule(site=faults.SITE_SCHEDULER_JOB, kind="error",
                          on_nth=1, max_fires=1),
            ])):
                job, _ = sched.submit(CompileRequest(workload="mul"))
                assert sched.wait(job.id, timeout=5).state == JOB_FAILED
                with pytest.raises(CircuitOpenError):
                    sched.submit(CompileRequest(workload="mul", width=70))
            metrics = sched.metrics.as_dict()
            assert metrics[
                'repro_faults_injected_total{site="scheduler.job"}'] == 1
        finally:
            sched.shutdown(drain=False)

    def test_service_summary_renders_resilience_line(self):
        sched = make_scheduler(compile_fn=crash_compile, breaker_threshold=1)
        try:
            job, _ = sched.submit(CompileRequest(workload="mul"))
            sched.wait(job.id, timeout=5)
            text = service_summary({"status": "ok", "v": 1, "uptime_s": 1.0},
                                   sched.metrics.as_dict())
            assert "breaker open" in text
        finally:
            sched.shutdown(drain=False)


class TestHttpShedding:
    def test_open_breaker_answers_503_with_retry_after(self):
        server = CompileServer(workers=1, quiet=True, compile_fn=crash_compile,
                               breaker_threshold=1).start()
        try:
            client = ServiceClient(server.url)
            view = client.compile(CompileRequest(workload="mul"), timeout=10)
            assert view.state == JOB_FAILED
            with pytest.raises(CircuitOpenError) as err:
                client.submit(CompileRequest(workload="mul", width=70))
            assert err.value.retry_after_s > 0
            # The raw response carries the Retry-After header.
            req = urllib.request.Request(
                server.url + "/compile",
                data=json.dumps(
                    CompileRequest(workload="mul", width=71).to_dict()
                ).encode(),
                headers={"Content-Type": "application/json"}, method="POST")
            with pytest.raises(urllib.error.HTTPError) as raw:
                urllib.request.urlopen(req, timeout=5)
            assert raw.value.code == 503
            assert int(raw.value.headers["Retry-After"]) >= 1
        finally:
            server.shutdown()


class TestClientRetry:
    def unreachable_client(self, attempts=2):
        # TEST-NET-1 with an instant-failing port: connection refused on
        # loopback-adjacent stacks without waiting on timeouts.
        return ServiceClient(
            "http://127.0.0.1:9",  # discard port: nothing listens
            timeout=0.5,
            retry=RetryPolicy(attempts=attempts, base_s=0.0, jitter=0.0),
        )

    def test_get_surfaces_typed_service_unavailable(self):
        client = self.unreachable_client(attempts=2)
        with pytest.raises(ServiceUnavailable, match="after 3 attempts"):
            client.healthz()

    def test_submit_post_is_retried_via_idempotency_key(self):
        # submit() stamps a client-generated idempotency key, which is
        # what makes retrying the POST safe: a replay lands on the job
        # the first attempt minted instead of double-submitting.
        client = self.unreachable_client(attempts=2)
        with pytest.raises(ServiceUnavailable, match="after 3 attempts"):
            client.submit(CompileRequest(workload="mul"))
        assert client.stats["post_retries"] == 2

    def test_non_idempotent_posts_are_never_retried(self):
        # cancel/shutdown POSTs carry no idempotency key: no retry.
        client = self.unreachable_client(attempts=2)
        with pytest.raises(ServiceError) as err:
            client.cancel("deadbeef")
        assert not isinstance(err.value, ServiceUnavailable)
        assert "attempts" not in str(err.value)
        assert client.stats["post_retries"] == 0

    def test_service_unavailable_is_a_service_error(self):
        # Pollers catching ServiceError keep working across the upgrade.
        assert issubclass(ServiceUnavailable, ServiceError)

    def test_client_honors_retry_after_on_queue_full(self):
        # Fill a size-1 queue behind a paused scheduler, then resume it
        # shortly after the shed: the client sleeps out the server's
        # Retry-After hint and its resubmission is admitted.
        server = CompileServer(workers=1, queue_size=1, quiet=True,
                               compile_fn=quick_compile).start()
        try:
            server.scheduler.pause()
            client = ServiceClient(server.url)
            first = client.submit(CompileRequest(workload="mul", width=64))
            timer = threading.Timer(0.2, server.scheduler.resume)
            timer.start()
            try:
                reply = client.submit(
                    CompileRequest(workload="mul", width=65)
                )
            finally:
                timer.cancel()
            assert reply["id"] != first["id"]
            assert client.stats["shed_retries"] >= 1
            assert client.wait(reply["id"], timeout=10).state == JOB_DONE
        finally:
            server.shutdown()

    def test_breaker_shed_with_long_cooldown_fails_fast(self):
        # A Retry-After hint past the client's cap (a breaker deep in
        # its cooldown) is not worth waiting out: surface it at once.
        server = CompileServer(workers=1, quiet=True,
                               compile_fn=crash_compile,
                               breaker_threshold=1,
                               breaker_cooldown_s=60.0).start()
        try:
            client = ServiceClient(server.url)
            view = client.compile(CompileRequest(workload="mul"), timeout=10)
            assert view.state == JOB_FAILED
            start = time.monotonic()
            with pytest.raises(CircuitOpenError):
                client.submit(CompileRequest(workload="mul", width=70))
            assert time.monotonic() - start < 2.0  # no 60 s wait
            assert client.stats["shed_retries"] == 0
        finally:
            server.shutdown()

    def test_injected_socket_reset_is_absorbed_by_retry(self):
        server = CompileServer(workers=1, quiet=True,
                               compile_fn=quick_compile).start()
        try:
            client = ServiceClient(
                server.url,
                retry=RetryPolicy(attempts=3, base_s=0.0, jitter=0.0))
            plan = FaultPlan(rules=[
                FaultRule(site=faults.SITE_SERVER_REQUEST,
                          kind="socket_reset", on_nth=2, max_fires=1),
            ])
            with faults.injected(plan):
                for _ in range(4):
                    assert client.healthz()["status"] == "ok"
            assert plan.injected_total() == 1
        finally:
            server.shutdown()
