"""Tests for stages 2+3 — Algorithm 2's sketch + swizzle synthesis."""

import pytest

from repro.errors import SynthesisError
from repro.hvx import cost as hvx_cost
from repro.hvx import isa as H
from repro.ir import builder as B
from repro.synthesis import grammar
from repro.synthesis.lifting import Lifter
from repro.synthesis.lowering import Lowerer, LoweringOptions
from repro.synthesis.oracle import LAYOUT_DEINTERLEAVED, LAYOUT_INORDER, Oracle
from repro.types import I32, U16, U8
from repro.uber import LoadData, Narrow, VsMpyAdd, Widen


def u8v(offset=0, lanes=128):
    return B.load("in", offset, lanes, U8)


def ops_of(program):
    return [n.op for n in program if isinstance(n, H.HvxInstr)]


def lower_ir(e, options=None, oracle=None):
    oracle = oracle or Oracle()
    lifted = Lifter(oracle).lift(e)
    return Lowerer(oracle, options=options or LoweringOptions()).lower(lifted)


class TestShapes:
    def test_shape_of(self):
        from repro.types import VectorType

        assert grammar.shape_of(VectorType(U8, 128), 128) == "vec"
        assert grammar.shape_of(VectorType(U16, 128), 128) == "pair"
        from repro.errors import UnsupportedExpressionError

        with pytest.raises(UnsupportedExpressionError):
            grammar.shape_of(VectorType(U8, 64), 128)


class TestComputeSelection:
    def test_horizontal_kernel_uses_vtmpy(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        program = lower_ir(row)
        assert "vtmpy" in ops_of(program)

    def test_vertical_kernel_uses_vmpa_chain(self):
        W = 512
        col = B.widen(u8v(-W)) + B.widen(u8v(0)) * 2 + B.widen(u8v(W))
        program = lower_ir(col)
        ops = ops_of(program)
        assert "vmpa" in ops
        assert "vtmpy" not in ops  # rows are not contiguous

    def test_widen_uses_extension(self):
        program = lower_ir(B.widen(u8v()))
        assert "vzxt" in ops_of(program)

    def test_fused_narrowing_shift(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        program = lower_ir(B.cast(U8, (row + 8) >> 4))
        ops = ops_of(program)
        # the one-instruction fused narrow (semantic reasoning: never
        # saturates, so the sat variant is admissible)
        assert any(op.startswith("vasrn") for op in ops) \
            or "vshuffeb" in ops

    def test_strided_pool_uses_vdmpy(self):
        a = B.load("in", 0, 128, U8, stride=2)
        b = B.load("in", 1, 128, U8, stride=2)
        e = B.widen(a) + B.widen(b)
        program = lower_ir(e)
        assert "vdmpy" in ops_of(program)

    def test_vmpyie_with_range_proof(self):
        # the l2norm pattern: the halfword operand derives from a logical
        # shift in the same expression, so its sign bit is provably clear.
        h = B.cast(B.load("in", 0, 64, U16).type.elem.widened().narrowed(),
                   B.shr(B.load("in", 0, 64, U16), 1))
        from repro.types import I16

        h = B.cast(I16, B.shr(B.load("in", 0, 64, U16), 1))
        k = B.broadcast(B.var("inv", I32), 64)
        program = lower_ir(k * B.cast(I32, h))
        assert "vmpyie" in ops_of(program)

    def test_vmpyie_rejected_without_proof(self):
        from repro.types import I16

        h = B.load("in", 0, 64, I16)  # full range: evens may be negative
        k = B.broadcast(B.var("inv", I32), 64)
        program = lower_ir(k * B.cast(I32, h))
        assert "vmpyie" not in ops_of(program)

    def test_every_program_is_equivalent(self):
        oracle = Oracle()
        exprs = [
            B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1)),
            B.cast(U8, B.clamp(B.widen(u8v()) + B.widen(u8v(1)), 0, 255)),
            B.absd(u8v(0), u8v(1)),
            B.maximum(u8v(0), B.minimum(u8v(1), u8v(2))),
        ]
        for e in exprs:
            program = lower_ir(e, oracle=oracle)
            assert Oracle().equivalent(e, program)


class TestOptions:
    def test_backtracking_improves_or_matches_cost(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        e = B.cast(U8, (row + 8) >> 4)
        with_bt = lower_ir(e, LoweringOptions(backtracking=True))
        without_bt = lower_ir(e, LoweringOptions(backtracking=False))
        assert hvx_cost.cost_of(with_bt).key <= hvx_cost.cost_of(without_bt).key

    def test_lane0_pruning_reduces_full_checks(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        o_pruned = Oracle()
        lower_ir(row, LoweringOptions(lane0_pruning=True), o_pruned)
        o_full = Oracle()
        lower_ir(row, LoweringOptions(lane0_pruning=False), o_full)
        # pruning adds cheap queries; both must find an implementation
        assert o_pruned.stats.stages["sketching"].queries >= \
            o_full.stats.stages["sketching"].queries

    def test_layout_search_off_still_correct(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        e = B.absd(row, row + B.broadcast(0, 128, U16))
        program = lower_ir(
            B.absd(
                B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1)),
                B.widen(u8v(511)) + B.widen(u8v(512)) * 2 + B.widen(u8v(513)),
            ),
            LoweringOptions(layout_search=False),
        )
        assert Oracle().equivalent(
            B.absd(
                B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1)),
                B.widen(u8v(511)) + B.widen(u8v(512)) * 2 + B.widen(u8v(513)),
            ),
            program,
        )

    def test_layout_search_enables_deferred_interleave(self):
        # With layout search, the absd of two vtmpy rows happens in the
        # deinterleaved domain with a single re-order afterwards.
        e = B.absd(
            B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1)),
            B.widen(u8v(511)) + B.widen(u8v(512)) * 2 + B.widen(u8v(513)),
        )
        program = lower_ir(e, LoweringOptions(layout_search=True))
        ops = ops_of(program)
        if "vtmpy" in ops:
            assert ops.count("vshuffvdd") <= 1

    def test_stats_attribution(self):
        oracle = Oracle()
        lower_ir(B.widen(u8v()), oracle=oracle)
        assert oracle.stats.stages["sketching"].queries > 0
        assert oracle.stats.stages["swizzling"].queries > 0
