"""End-to-end HTTP tests: real sockets, real compiles, real shutdown.

The ``CompileServer`` is booted on an ephemeral port per test class and
driven exclusively through :class:`ServiceClient` — the same path the
CLI's ``submit``/``status`` subcommands use — so these tests pin the wire
format, not just the Python API.
"""

import json
import time
import urllib.request

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro.errors import ServiceError
from repro.hvx import program_listing
from repro.pipeline import compile_pipeline
from repro.service import CompileRequest, CompileServer, ServiceClient
from repro.service.protocol import JOB_DONE
from repro.service.scheduler import CompileResult
from repro.workloads.base import get


def quick_compile(request, cancel, cache):
    return CompileResult(workload=request.workload, backend=request.backend,
                         total_cycles=1)


@pytest.fixture
def server():
    srv = CompileServer(workers=2, quiet=True).start()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        from repro.service.protocol import PROTOCOL_VERSION

        assert health["status"] == "ok"
        assert health["v"] == PROTOCOL_VERSION
        assert health["workloads"] >= 21

    def test_unknown_routes_404(self, server):
        for method, path in (("GET", "/nope"), ("POST", "/nope")):
            req = urllib.request.Request(server.url + path, method=method)
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=5)
            assert err.value.code == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("feedface0000")

    def test_bad_request_body_400(self, server):
        req = urllib.request.Request(
            server.url + "/compile", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5)
        assert err.value.code == 400

    def test_unknown_workload_400(self, client):
        with pytest.raises(ServiceError, match="unknown workload"):
            client.submit(CompileRequest(workload="not-a-kernel"))

    def test_metrics_text_and_json(self, client):
        text = client.metrics_text()
        assert "# TYPE repro_jobs_submitted_total counter" in text
        data = client.metrics()
        assert "repro_jobs_submitted_total" in data


class TestCompileFlow:
    def test_server_matches_one_shot_compile(self, client):
        """Acceptance: served selections are byte-identical to the CLI's."""
        view = client.compile(CompileRequest(workload="mul", backend="rake"),
                              timeout=120)
        assert view.state == JOB_DONE

        wl = get("mul")
        compiled = compile_pipeline(wl.build(), backend="rake")
        expected = [
            {"stage": cs.name, "selector": ce.selector,
             "listing": program_listing(ce.program),
             "rule_hit": False}
            for cs in compiled.stages for ce in cs.exprs
            if ce.selector != "trivial"
        ]
        assert list(view.result.programs) == expected

        from repro.sim import measure
        assert view.result.total_cycles == \
            measure(compiled, wl.width, wl.height).total

    def test_warm_second_run_hits_cache(self, client):
        cold = client.compile(CompileRequest(workload="mul"), timeout=120)
        warm = client.compile(CompileRequest(workload="mul"), timeout=120)
        assert cold.result.stats["totals"]["cache_misses"] > 0
        assert warm.result.stats["totals"]["cache_misses"] == 0
        assert warm.result.programs == cold.result.programs


class TestCoalescingOverHTTP:
    def test_identical_submissions_coalesce(self):
        server = CompileServer(workers=1, quiet=True,
                               compile_fn=quick_compile).start()
        try:
            client = ServiceClient(server.url)
            server.scheduler.pause()
            first = client.submit(CompileRequest(workload="mul"))
            second = client.submit(CompileRequest(workload="mul"))
            distinct = client.submit(CompileRequest(workload="add"))
            assert not first["coalesced"]
            assert second["coalesced"] and second["id"] == first["id"]
            assert not distinct["coalesced"]
            server.scheduler.resume()
            view = client.wait(first["id"], timeout=30)
            assert view.coalesced_waiters == 1
            assert client.metrics()["repro_jobs_coalesced_total"] == 1
            assert "repro_jobs_coalesced_total 1" in client.metrics_text()
        finally:
            server.shutdown()


class TestCancelOverHTTP:
    def test_cancel_queued_job(self):
        server = CompileServer(workers=1, quiet=True,
                               compile_fn=quick_compile).start()
        try:
            client = ServiceClient(server.url)
            server.scheduler.pause()
            submitted = client.submit(CompileRequest(workload="mul"))
            assert client.cancel(submitted["id"])
            view = client.status(submitted["id"])
            assert view.state == "cancelled"
            assert not client.cancel(submitted["id"])  # already terminal
        finally:
            server.shutdown()


class TestGracefulShutdown:
    def test_drain_completes_inflight_jobs_and_flushes_cache(self, tmp_path):
        server = CompileServer(workers=1, quiet=True,
                               cache_dir=str(tmp_path)).start()
        client = ServiceClient(server.url)
        submitted = client.submit(CompileRequest(workload="mul"))
        assert client.shutdown() == {"draining": True}
        # Polls must keep working through the drain window.
        view = client.wait(submitted["id"], timeout=120)
        assert view.state == JOB_DONE
        # The HTTP loop stops shortly after the drain finishes.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            try:
                client.healthz()
            except ServiceError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("server kept serving after graceful shutdown")
        store = tmp_path / "oracle.jsonl"
        assert store.exists()
        # Every flushed line is a complete record.
        for line in store.read_text().splitlines():
            assert json.loads(line)["t"] in ("v", "c")

    def test_submissions_after_shutdown_are_rejected(self):
        server = CompileServer(workers=1, quiet=True,
                               compile_fn=quick_compile).start()
        client = ServiceClient(server.url)
        server.scheduler.shutdown()  # close admission, keep HTTP up
        with pytest.raises(ServiceError):
            client.submit(CompileRequest(workload="mul"))
        server.shutdown()
