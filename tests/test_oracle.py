"""Tests for the equivalence oracle and valuation generation."""

from repro.hvx import isa as H
from repro.ir import builder as B
from repro.synthesis.oracle import (
    LAYOUT_DEINTERLEAVED,
    LAYOUT_INORDER,
    Oracle,
    denote,
)
from repro.synthesis.valuation import (
    buffer_specs_of,
    environment_bank,
    make_environment,
    scalar_names_of,
)
from repro.types import I16, U16, U8
from repro.ir import expr as E


def u8v(offset=0, lanes=8):
    return B.load("in", offset, lanes, U8)


class TestValuation:
    def test_buffer_specs_merge(self):
        e = u8v(-1) + u8v(2)
        (spec,) = buffer_specs_of(e)
        assert (spec.lo, spec.hi) == (-1, 10)

    def test_scalar_names(self):
        k = E.ScalarVar("k", U8)
        e = u8v() + B.broadcast(k, 8)
        assert scalar_names_of(e) == [("k", U8)]

    def test_bank_covers_boundary_styles(self):
        bank = environment_bank(u8v())
        assert len(bank) >= 6
        values = [denote(u8v(), env) for env in bank]
        # the ramp style gives distinct lane values
        assert len(set(values[0])) == len(values[0])
        # some style hits the max boundary
        assert any(all(v == 255 for v in vals) for vals in values)

    def test_environments_pad_beyond_live_range(self):
        (spec,) = buffer_specs_of(u8v())
        env = make_environment([spec], [], "ramp", 0)
        # candidate implementations may read far past the spec's loads
        assert env.buffer("in").read(-256, 8)
        assert env.buffer("in").read(256, 8)

    def test_deterministic(self):
        b1 = environment_bank(u8v(), seed=3)
        b2 = environment_bank(u8v(), seed=3)
        assert [e.buffers["in"].data for e in b1] == \
            [e.buffers["in"].data for e in b2]


class TestDenote:
    def test_ir_and_uber_agree(self):
        from repro.uber import LoadData

        e_ir = u8v()
        e_uber = LoadData("in", 0, 8, U8)
        env = environment_bank(e_ir)[0]
        assert denote(e_ir, env) == denote(e_uber, env)

    def test_bit_pattern_masking(self):
        # i16 -1 and u16 65535 denote identically
        a = B.broadcast(-1, 4, I16)
        b = B.broadcast(65535, 4, U16)
        env = environment_bank(a)[0]
        assert denote(a, env) == denote(b, env)

    def test_hvx_layout_interleave(self):
        load = H.HvxLoad("in", 0, 8, U8)
        pair = H.HvxInstr("vcombine", (H.HvxLoad("in", 0, 4, U8),
                                       H.HvxLoad("in", 4, 4, U8)))
        dealt = H.HvxInstr("vdealvdd", (pair,))
        env = environment_bank(u8v())[0]
        want = denote(load, env)
        assert denote(dealt, env, LAYOUT_DEINTERLEAVED) == want
        assert denote(dealt, env, LAYOUT_INORDER) != want


class TestOracle:
    def test_accepts_identity(self, oracle):
        assert oracle.equivalent(u8v(), u8v())

    def test_accepts_true_rewrite(self, oracle):
        spec = B.widen(u8v()) * 2
        cand = B.shl(B.widen(u8v()), B.broadcast(1, 8, U16))
        assert oracle.equivalent(spec, cand)

    def test_rejects_near_miss(self, oracle):
        spec = B.widen(u8v()) * 2
        cand = B.widen(u8v()) * 3
        assert not oracle.equivalent(spec, cand)

    def test_rejects_sat_vs_wrap_on_boundaries(self, oracle):
        # Only extreme inputs distinguish these — the bank must catch it.
        spec = B.cast(U8, B.widen(u8v()) + B.widen(u8v(1)))
        cand = B.sat_cast(U8, B.widen(u8v()) + B.widen(u8v(1)))
        assert not oracle.equivalent(spec, cand)

    def test_accepts_sat_when_range_allows(self, oracle):
        # (x + 8) >> 4 of a 3-tap kernel fits u8: trunc == saturate.
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        spec = B.cast(U8, (row + 8) >> 4)
        cand = B.sat_cast(U8, (row + 8) >> 4)
        assert oracle.equivalent(spec, cand)

    def test_counterexamples_cached(self, oracle):
        spec = B.widen(u8v()) * 2
        wrong = B.widen(u8v()) * 3
        assert not oracle.equivalent(spec, wrong)
        assert oracle._counterexamples[spec]
        # a second wrong candidate is rejected via the cached example
        assert not oracle.equivalent(spec, B.widen(u8v()) * 4)

    def test_lane0_pruning_rejects(self, oracle):
        spec = B.widen(u8v()) * 2
        assert not oracle.equivalent_lane0(spec, B.widen(u8v()) * 3)
        assert oracle.equivalent_lane0(spec, B.widen(u8v()) * 2)

    def test_lane0_can_accept_wrong_candidates(self, oracle):
        # lane-0 only checks the first lane: a candidate correct in lane 0
        # but wrong elsewhere passes the prune and must be caught by the
        # full check (Section 4.1's two-phase design).
        spec = u8v()
        cand = B.select(
            B.lt(B.load("idx", 0, 8, U8), B.broadcast(1, 8, U8)),
            u8v(), B.broadcast(0, 8, U8),
        )
        # NOTE: different free buffers make this not directly comparable;
        # instead use a rotate: lane 0 matches, others do not.
        cand = H.HvxInstr("vror", (H.HvxLoad("in", 0, 8, U8),), (0,))
        assert oracle.equivalent_lane0(spec, cand)

    def test_stats_count_queries(self, oracle):
        with oracle.stats.stage("lifting"):
            oracle.equivalent(u8v(), u8v())
            oracle.equivalent_lane0(u8v(), u8v())
        assert oracle.stats.stages["lifting"].queries == 2

    def test_error_candidates_rejected(self, oracle):
        # A candidate that reads an unbound buffer is simply not equivalent.
        assert not oracle.equivalent(u8v(), B.load("ghost", 0, 8, U8))


def _vcmp_gt_127():
    """``vcmp_gt(in, splat(127))`` — a predicate-register candidate."""
    return H.HvxInstr("vcmp_gt", (
        H.HvxLoad("in", 0, 8, U8),
        H.HvxSplat(B.const(127, U8), U8, 8),
    ))


class TestPredicateWidths:
    """Regressions for the PredVec masking bug: predicates denote one-bit
    lanes and may only implement boolean specs, never 0/1-valued data."""

    def test_predicate_cannot_impersonate_data_vector(self, oracle):
        # (x >> 7) yields 0/1-valued *u8 data*; vcmp_gt(x, 127) computes the
        # same bit per lane but in a predicate register, which cannot be
        # stored to memory.  Width-blind comparison used to accept this.
        spec = B.shr(u8v(), B.broadcast(7, 8, U8))
        assert not oracle.equivalent(spec, _vcmp_gt_127())

    def test_predicate_implements_boolean_spec(self, oracle):
        # Against a genuinely boolean spec the same predicate is correct.
        spec = B.gt(u8v(), B.broadcast(127, 8, U8))
        assert oracle.equivalent(spec, _vcmp_gt_127())

    def test_predicate_denotes_one_bit_lanes(self):
        env = environment_bank(u8v())[0]
        lanes = denote(_vcmp_gt_127(), env)
        assert set(lanes) <= {0, 1}
        assert all(isinstance(v, int) for v in lanes)

    def test_widened_twin_rejected(self, oracle):
        # widen(x) holds the same numeric lanes as x at double the width;
        # bit-pattern equality is only meaningful at matching widths.
        assert not oracle.equivalent(u8v(), B.widen(u8v()))
        assert not oracle.equivalent_lane0(u8v(), B.widen(u8v()))

    def test_predicate_under_deinterleaved_layout(self, oracle):
        # A predicate is not a register pair: the deinterleaved read-back
        # must reject it cleanly instead of crashing.
        spec = B.gt(u8v(), B.broadcast(127, 8, U8))
        assert not oracle.equivalent(spec, _vcmp_gt_127(),
                                     LAYOUT_DEINTERLEAVED)
