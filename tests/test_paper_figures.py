"""Integration tests pinning the paper's qualitative claims (Figures 4, 9
and 12): for each documented optimization class, Rake discovers it and the
baseline does not."""

import pytest

from repro.baseline import optimize as baseline_optimize
from repro.hvx import display_latency, isa as H, load_count
from repro.ir import builder as B
from repro.synthesis import select_instructions
from repro.synthesis.lifting import Lifter
from repro.synthesis.oracle import Oracle
from repro.types import I16, I32, U16, U8


def u8v(offset=0, lanes=128):
    return B.load("input", offset, lanes, U8)


def ops_of(program):
    return [n.op for n in program if isinstance(n, H.HvxInstr)]


def rake(e):
    return select_instructions(e).program


class TestFigure4:
    """The three Sobel instances of Figure 4."""

    def row(self, dy, W=512):
        base = dy * W
        return (B.widen(u8v(base - 1)) + B.widen(u8v(base)) * 2
                + B.widen(u8v(base + 1)))

    def col(self, dx, W=512):
        return (B.widen(u8v(dx - W)) + B.widen(u8v(dx)) * 2
                + B.widen(u8v(dx + W)))

    def test_a_sliding_window_becomes_vtmpy(self):
        e = self.row(1)
        r, b = rake(e), baseline_optimize(e)
        assert "vtmpy" in ops_of(r)
        assert "vtmpy" not in ops_of(b)
        assert load_count(r) < load_count(b)  # 2 loads vs 3 (paper's point)

    def test_b_accumulating_vmpa(self):
        e = self.col(-1)
        r, b = rake(e), baseline_optimize(e)
        r_ops, b_ops = ops_of(r), ops_of(b)
        assert any(op.endswith("_acc") for op in r_ops)
        assert not any(op.endswith("_acc") for op in b_ops)
        assert display_latency(r) < display_latency(b)

    def test_c_saturate_replaces_clamp_chain(self):
        sx = B.absd(self.row(-1), self.row(1))
        sy = B.absd(self.col(-1), self.col(1))
        e = B.cast(U8, B.clamp(sx + sy, 0, 255))
        r, b = rake(e), baseline_optimize(e)
        assert "vmin" not in ops_of(r) and "vmax" not in ops_of(r)
        assert "vmin" in ops_of(b) and "vmax" in ops_of(b)
        assert display_latency(r) < display_latency(b)


class TestFigure12:
    def test_average_pool_mixed_width_accumulate(self):
        # wild_u16x + uint16x128(wild_u8x) -> one vmpy-acc
        e = B.load("acc", 0, 128, U16) + B.widen(u8v())
        r, b = rake(e), baseline_optimize(e)
        assert "vmpy_acc" in ops_of(r)
        assert display_latency(r) < display_latency(b)

    def test_camera_pipe_redundant_clamp_removed(self):
        e = B.cast(U8, B.maximum(
            B.minimum(B.load("t", 0, 128, I16), B.broadcast(255, 128, I16)),
            B.broadcast(0, 128, I16)))
        r, b = rake(e), baseline_optimize(e)
        assert "vmax" not in ops_of(r)
        assert "vmax" in ops_of(b)
        assert Oracle().equivalent(e, r)

    def test_add_shift_folds_into_widening_multiply(self):
        zp = B.var("zp", U8)
        e = (B.shl(B.cast(I16, u8v()), B.broadcast(6, 128, I16))
             + B.broadcast(B.mul(B.cast(I16, zp), B.const(-64, I16)), 128))
        r, b = rake(e), baseline_optimize(e)
        r_ops = ops_of(r)
        assert "vmpy" in r_ops or "vmpy_acc" in r_ops
        assert display_latency(r) <= display_latency(b)

    def test_l2norm_vmpyie_via_range_proof(self):
        h = B.cast(I16, B.shr(B.load("input", 0, 64, U16), 1))
        e = B.broadcast(B.var("inv_norm", I32), 64) * B.cast(I32, h)
        r, b = rake(e), baseline_optimize(e)
        assert "vmpyie" in ops_of(r)
        assert "vmpyie" not in ops_of(b)
        assert display_latency(r) < display_latency(b)

    def test_gaussian_fused_round_saturate_narrow(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        e = B.cast(U8, (row + 8) >> 4)
        r, b = rake(e), baseline_optimize(e)
        assert any(op.startswith("vasrn") for op in ops_of(r)) \
            or "vshuffeb" in ops_of(r)
        assert display_latency(r) < display_latency(b)


class TestFigure9:
    def test_lifting_trace_shape(self):
        oracle = Oracle()
        lifter = Lifter(oracle)
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        lifted = lifter.lift(row)
        rules = [s.rule for s in lifter.trace]
        # Figure 9's progression: extends for the leaves, a replace when
        # widen becomes vs-mpy-add, updates as the kernel grows to (2 1 1).
        assert rules.count("extend") >= 3
        assert "replace" in rules
        assert rules[-1] == "update"
        assert "kernel: '(2 1 1)" in lifter.trace[-1].result
