"""Tests for the baseline Halide-style optimizer: correctness everywhere,
plus the specific pattern strengths and documented gaps."""

import pytest

from repro.baseline import HalideOptimizer, optimize
from repro.errors import UnsupportedExpressionError
from repro.hvx import isa as H
from repro.ir import builder as B
from repro.synthesis.oracle import Oracle
from repro.types import I16, I32, U16, U8


def u8v(offset=0, lanes=128):
    return B.load("in", offset, lanes, U8)


def ops_of(program):
    return [n.op for n in program if isinstance(n, H.HvxInstr)]


class TestPatterns:
    def test_widening_cast(self):
        assert "vzxt" in ops_of(optimize(B.widen(u8v())))

    def test_vmpa_for_two_term_kernel(self):
        e = B.widen(u8v(0)) + B.widen(u8v(1)) * 2
        assert "vmpa" in ops_of(optimize(e))

    def test_three_term_kernel_is_vmpa_plus_vadd(self):
        e = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        ops = ops_of(optimize(e))
        assert "vmpa" in ops and "vadd" in ops and "vzxt" in ops

    def test_no_vtmpy_ever(self):
        e = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        assert "vtmpy" not in ops_of(optimize(e))

    def test_no_accumulating_multiplies(self):
        e = B.load("acc", 0, 128, U16) + B.widen(u8v())
        ops = ops_of(optimize(e))
        assert not any(op.endswith("_acc") for op in ops)

    def test_narrowing_cast_is_vpacke(self):
        e = B.cast(U8, B.widen(u8v()) + B.widen(u8v(1)))
        assert "vpacke" in ops_of(optimize(e))

    def test_no_fused_narrowing_shift(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        e = B.cast(U8, (row + 8) >> 4)
        ops = ops_of(optimize(e))
        assert not any(op.startswith("vasrn") for op in ops)
        assert "vasr" in ops and "vpacke" in ops

    def test_redundant_clamp_kept(self):
        # Figure 12, camera_pipe: vpackub saturates, yet the min/max clamp
        # is still emitted.
        e = B.cast(U8, B.clamp(B.widen(u8v()) + B.widen(u8v(1)), 0, 255))
        ops = ops_of(optimize(e))
        assert "vpackub" in ops
        assert "vmin" in ops and "vmax" in ops

    def test_sat_cast_uses_vpackub(self):
        e = B.sat_cast(U8, B.widen(u8v()) + B.widen(u8v(1)))
        assert "vpackub" in ops_of(optimize(e))

    def test_word_by_half_uses_vmpyio_pair(self):
        h = B.cast(I16, B.shr(B.load("in", 0, 64, U16), 1))
        e = B.broadcast(B.var("inv", I32), 64) * B.cast(I32, h)
        ops = ops_of(optimize(e))
        assert ops.count("vmpyio") == 2
        assert "vmpyie" not in ops
        assert "vror" in ops  # the extra data movement Rake avoids

    def test_rounding_halving_add_not_fused(self):
        # No vavg pattern for the general shape — the widened add is used.
        e = B.cast(U8, (B.widen(u8v(0)) + B.widen(u8v(1)) + 1) >> 1)
        ops = ops_of(optimize(e))
        assert "vavg_rnd" not in ops

    def test_select_lowering(self):
        e = B.select(B.gt(u8v(0), u8v(1)), u8v(0), u8v(1))
        ops = ops_of(optimize(e))
        assert "vcmp_gt" in ops and "vmux" in ops

    def test_div_pow2(self):
        e = B.load("in", 0, 128, U16) // 8
        assert "vlsr" in ops_of(optimize(e))

    def test_strided_load_deinterleaves(self):
        e = B.load("in", 0, 128, U8, stride=2)
        assert "vdealvdd" in ops_of(optimize(e))

    def test_non_const_shift_rejected(self):
        e = B.shl(u8v(), u8v(1))
        with pytest.raises(UnsupportedExpressionError):
            optimize(e)


class TestCorrectness:
    EXPRS = [
        B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1)),
        B.cast(U8, (B.widen(u8v(-1)) + B.widen(u8v(0)) * 2
                    + B.widen(u8v(1)) + 8) >> 4),
        B.cast(U8, B.clamp(B.widen(u8v()) + B.widen(u8v(1)), 0, 255)),
        B.sat_cast(U8, B.widen(u8v()) * 3),
        B.absd(u8v(0), u8v(1)) + B.absd(u8v(2), u8v(3)),
        B.minimum(B.maximum(u8v(0), u8v(1)), u8v(2)),
        B.select(B.le(u8v(0), u8v(1)), u8v(2), u8v(3)),
        B.widen(B.load("in", 0, 128, U8, stride=2))
        + B.widen(B.load("in", 1, 128, U8, stride=2)),
        B.load("acc", 0, 128, U16) + B.widen(u8v()),
        (B.cast(I16, u8v()) << 5) + B.broadcast(B.const(-3, I16), 128),
    ]

    @pytest.mark.parametrize("index", range(len(EXPRS)))
    def test_equivalent_to_ir(self, index):
        e = self.EXPRS[index]
        program = optimize(e)
        assert Oracle().equivalent(e, program)

    def test_signedness_coercion(self):
        # u16 >> then interpreted as i16 must shift arithmetically after
        # the retype.
        e = B.shr(B.cast(I16, B.load("in", 0, 128, U16)), 2)
        program = optimize(e)
        assert Oracle().equivalent(e, program)
