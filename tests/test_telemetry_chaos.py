"""Telemetry must never hurt its producer, and the service must feed it.

The chaos half injects every relevant failure kind at the
``telemetry.flush`` site — in-process error, disk ``OSError``, torn
write — plus an unwritable store directory, and proves the compile that
produced the records always exits clean, never degrades, and (for the
cache path) still replays the verdict store byte-for-byte with zero
misses.  The service half asserts the scheduler emits one record per
completed job and serves the corpus through ``GET /telemetry/summary``
and the labeled ``repro_compile_seconds`` histogram in ``/metrics``.
"""

import json
import urllib.request

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro import faults
from repro.cli import main
from repro.faults import FaultPlan, FaultRule
from repro.telemetry import TelemetryStore, build_record, emit, read_store
from repro.service import CompileRequest, CompileServer, ServiceClient

WORKLOAD = "mul"  # fastest full compile in the suite


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def flush_plan(kind, every=1):
    return FaultPlan(name=f"tel-{kind}", seed=3, rules=[
        FaultRule(site=faults.SITE_TELEMETRY_FLUSH, kind=kind, every=every),
    ])


def cli_compile(tmp_path, telemetry_dir, cache_dir=None):
    """One rake compile through the real CLI; returns its stats payload."""
    stats = tmp_path / "stats.json"
    argv = ["compile", WORKLOAD, "--backend", "rake",
            "--telemetry-dir", str(telemetry_dir),
            "--stats-json", str(stats)]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    code = main(argv)
    return code, json.loads(stats.read_text())


class TestFlushFaults:
    @pytest.mark.parametrize("kind", [faults.KIND_ERROR, faults.KIND_OSERROR])
    def test_raising_kinds_are_swallowed(self, tmp_path, kind):
        store = TelemetryStore(tmp_path)
        plan = flush_plan(kind)
        with faults.injected(plan):
            rid = emit(store, build_record(
                source="test", workload=WORKLOAD, target="hvx", wall_s=1.0))
        assert rid is not None  # append succeeded; the flush ate the fault
        assert plan.injected_total() >= 1
        assert store.write_errors >= 1
        assert read_store(tmp_path).records == []  # batch dropped, not torn

    def test_torn_write_caught_by_crc_and_quarantined(self, tmp_path):
        store = TelemetryStore(tmp_path)
        good = build_record(source="test", workload=WORKLOAD,
                            target="hvx", wall_s=1.0)
        emit(store, good)  # clean first line
        with faults.injected(flush_plan(faults.KIND_TORN_WRITE)):
            emit(store, build_record(source="test", workload="add",
                                     target="hvx", wall_s=2.0))
        report = read_store(tmp_path, repair=True)
        assert report.corrupt_lines == 1
        assert [r["id"] for r in report.records] == [good["id"]]
        assert len(report.quarantined) == 1
        # the compacted store reads clean and keeps accepting records
        emit(store, build_record(source="test", workload="sub",
                                 target="hvx", wall_s=3.0))
        again = read_store(tmp_path)
        assert again.corrupt_lines == 0 and len(again.records) == 2

    @pytest.mark.parametrize("kind", [
        faults.KIND_ERROR, faults.KIND_OSERROR, faults.KIND_TORN_WRITE])
    def test_cli_compile_survives_flush_faults(self, tmp_path, kind):
        plan = flush_plan(kind)
        faults.activate(plan)
        try:
            code, payload = cli_compile(tmp_path, tmp_path / "tel")
        finally:
            faults.deactivate()
        assert code == 0
        assert plan.injected_total() >= 1
        assert payload["totals"]["queries"] > 0  # real synthesis happened
        # every flush failed (raised or landed torn), so the corpus reads
        # empty — the loss shows up in counters, never in the exit code
        assert read_store(tmp_path / "tel").records == []

    def test_unwritable_store_fails_fast_before_synthesis(self, tmp_path,
                                                          capsys):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        code = main(["compile", WORKLOAD, "--backend", "rake",
                     "--telemetry-dir", str(blocker / "tel")])
        assert code == 1  # explicit opt-in: one-line error, no compile paid
        assert "--telemetry" in capsys.readouterr().err

    def test_store_turning_unwritable_mid_run_never_raises(self, tmp_path):
        # Past the pre-flight the contract flips to best-effort: a store
        # that becomes unwritable after the compile started only counts.
        store = TelemetryStore(tmp_path / "gone" / "deeper")
        (tmp_path / "gone").write_text("now a file")
        rid = emit(store, build_record(source="test", workload=WORKLOAD,
                                       target="hvx", wall_s=1.0))
        assert rid is not None
        assert store.write_errors == 1


class TestWarmReplayWithTelemetry:
    def test_verdict_cache_replay_zero_misses(self, tmp_path):
        cache = tmp_path / "cache"
        tel = tmp_path / "tel"
        code, cold = cli_compile(tmp_path, tel, cache_dir=cache)
        assert code == 0 and cold["totals"]["cache_misses"] > 0
        code, warm = cli_compile(tmp_path, tel, cache_dir=cache)
        assert code == 0
        assert warm["totals"]["cache_misses"] == 0
        assert warm["totals"]["cache_hits"] > 0
        # both compiles landed in the corpus, stamped with their ids
        records = read_store(tel).records
        assert {r["id"] for r in records} >= {
            cold["telemetry"]["record_id"], warm["telemetry"]["record_id"]}
        by_id = {r["id"]: r for r in records}
        assert by_id[warm["telemetry"]["record_id"]]["totals"][
            "cache_misses"] == 0
        assert not any(r["degraded"] for r in records)


class TestServiceTelemetry:
    def test_scheduler_emits_and_serves_summary(self, tmp_path):
        tel = tmp_path / "tel"
        server = CompileServer(workers=1, quiet=True, grace_s=0.0,
                               telemetry_dir=str(tel)).start()
        try:
            client = ServiceClient(server.url)
            view = client.compile(CompileRequest(workload=WORKLOAD),
                                  timeout=300)
            assert view.state == "done"

            summary = json.load(urllib.request.urlopen(
                server.url + "/telemetry/summary"))
            assert summary["enabled"] is True
            assert summary["records"] >= 1
            (group,) = [g for g in summary["groups"]
                        if g["workload"] == WORKLOAD]
            assert group["target"] == "hvx" and group["n"] >= 1

            metrics = urllib.request.urlopen(
                server.url + "/metrics").read().decode()
            assert (f'repro_compile_seconds_count{{target="hvx",'
                    f'workload="{WORKLOAD}"}}') in metrics
        finally:
            server.shutdown()

        # on disk: one record per completed job, source-stamped
        records = read_store(tel).records
        assert len(records) == 1
        (record,) = records
        assert record["source"] == "service"
        assert record["workload"] == WORKLOAD
        assert record["queue_wait_s"] is not None
        assert record["extra"]["job_id"]

    def test_summary_reports_disabled_without_store(self):
        from repro.service.scheduler import JobScheduler

        sched = JobScheduler(workers=1)
        try:
            assert sched.telemetry_summary() == {"enabled": False}
        finally:
            sched.shutdown()
