"""Tests for stage 1 — lifting Halide IR to the Uber-Instruction IR."""

import pytest

from repro.errors import UnsupportedExpressionError
from repro.ir import builder as B
from repro.synthesis.lifting import Lifter
from repro.synthesis.oracle import Oracle
from repro.types import I16, I32, U16, U8
from repro.uber import (
    AbsDiff,
    Average,
    BroadcastScalar,
    LoadData,
    Maximum,
    Minimum,
    Mux,
    Narrow,
    ShiftRight,
    VsMpyAdd,
    VvMpyAdd,
    Widen,
)
from repro.ir import expr as E


def u8v(offset=0, lanes=128):
    return B.load("in", offset, lanes, U8)


def lift(e):
    return Lifter(Oracle()).lift(e)


class TestLeaves:
    def test_load(self):
        assert lift(u8v()) == LoadData("in", 0, 128, U8)

    def test_strided_load(self):
        e = B.load("in", 1, 128, U8, stride=2)
        assert lift(e) == LoadData("in", 1, 128, U8, 2)

    def test_broadcast(self):
        lifted = lift(B.broadcast(9, 128, U8))
        assert isinstance(lifted, BroadcastScalar)


class TestKernelGrowth:
    def test_three_point_kernel(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        lifted = lift(row)
        assert isinstance(lifted, VsMpyAdd)
        assert sorted(lifted.weights) == [1, 1, 2]
        assert len(lifted.reads) == 3
        assert lifted.out_elem == U16

    def test_subtraction_negates_weight(self):
        e = B.widen(u8v(0)) - B.widen(u8v(1))
        lifted = lift(e)
        assert isinstance(lifted, VsMpyAdd)
        assert sorted(lifted.weights) == [-1, 1]

    def test_shift_left_becomes_weight(self):
        e = B.shl(B.widen(u8v()), B.broadcast(3, 128, U16))
        lifted = lift(e)
        assert isinstance(lifted, VsMpyAdd)
        assert lifted.weights == (8,)

    def test_five_point_kernel(self):
        taps = [(-2, 1), (-1, 4), (0, 6), (1, 4), (2, 1)]
        e = None
        for off, w in taps:
            term = B.widen(u8v(off)) * w
            e = term if e is None else e + term
        lifted = lift(e)
        assert isinstance(lifted, VsMpyAdd)
        assert sorted(lifted.weights) == [1, 1, 4, 4, 6]

    def test_widen_only(self):
        lifted = lift(B.widen(u8v()))
        assert isinstance(lifted, Widen)

    def test_mixed_width_accumulate(self):
        # Figure 12's average_pool shape: u16 vector + widened u8 vector.
        acc = B.load("acc", 0, 128, U16)
        e = acc + B.widen(u8v())
        lifted = lift(e)
        assert isinstance(lifted, VsMpyAdd)
        widths = sorted(r.type.elem.bits for r in lifted.reads)
        assert widths == [8, 16]


class TestNarrowFusion:
    def test_rounding_shift_narrow(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        e = B.cast(U8, (row + 8) >> 4)
        lifted = lift(e)
        assert isinstance(lifted, Narrow)
        assert lifted.shift == 4
        assert lifted.round
        assert isinstance(lifted.value, VsMpyAdd)

    def test_clamp_becomes_saturation(self):
        row = B.widen(u8v(0)) + B.widen(u8v(1))
        e = B.cast(U8, B.clamp(row, 0, 255))
        lifted = lift(e)
        # Either fused form is a valid greedy outcome: a saturating narrow,
        # or a saturating vs-mpy-add performed at the narrow width.
        if isinstance(lifted, Narrow):
            assert lifted.saturate
        else:
            assert isinstance(lifted, VsMpyAdd) and lifted.saturate
        assert Oracle().equivalent(e, lifted)

    def test_sat_cast(self):
        e = B.sat_cast(U8, B.widen(u8v()) * 3)
        lifted = lift(e)
        assert isinstance(lifted, (Narrow, VsMpyAdd))
        assert lifted.saturate
        assert Oracle().equivalent(e, lifted)

    def test_narrow_never_below_read_width(self):
        # The vs-mpy-add must not adopt an out type narrower than its reads.
        row = B.load("a", 0, 128, U16) + B.load("b", 0, 128, U16)
        e = B.cast(U8, B.clamp(row, 0, 255))
        lifted = lift(e)
        assert isinstance(lifted, Narrow)

    def test_same_width_reinterpret(self):
        e = B.cast(I16, B.shr(B.load("in", 0, 128, U16), 1))
        lifted = lift(e)
        assert isinstance(lifted, Narrow)
        assert lifted.shift == 1


class TestOtherInstructions:
    def test_absd(self):
        lifted = lift(B.absd(u8v(0), u8v(1)))
        assert isinstance(lifted, AbsDiff)

    def test_min_max(self):
        assert isinstance(lift(B.minimum(u8v(0), u8v(1))), Minimum)
        assert isinstance(lift(B.maximum(u8v(0), u8v(1))), Maximum)

    def test_average_detection(self):
        e = B.cast(U8, (B.widen(u8v(0)) + B.widen(u8v(1)) + 1) >> 1)
        lifted = lift(e)
        assert isinstance(lifted, Average)
        assert lifted.round
        assert isinstance(lifted.a, LoadData)

    def test_shift_right(self):
        e = B.shr(B.load("in", 0, 128, U16), B.broadcast(2, 128, U16))
        lifted = lift(e)
        assert isinstance(lifted, ShiftRight)

    def test_rounding_shift_right_same_width(self):
        # The bias fold is only sound when the add provably cannot wrap, so
        # bound the input with an inner shift first.
        x = B.shr(B.load("in", 0, 128, U16), 2)
        e = B.shr(x + 2, 2)
        lifted = lift(e)
        assert isinstance(lifted, ShiftRight)
        assert lifted.round

    def test_bias_fold_rejected_when_it_can_wrap(self):
        # (x + 2) >> 2 on a full-range u16 is NOT a rounding shift: the
        # add wraps first.  The oracle must refuse the fused form.
        x = B.load("in", 0, 128, U16)
        lifted = lift(B.shr(x + 2, 2))
        assert Oracle().equivalent(B.shr(x + 2, 2), lifted)
        if isinstance(lifted, ShiftRight):
            assert not (lifted.round and isinstance(lifted.value, LoadData))

    def test_div_pow2(self):
        e = B.load("in", 0, 128, U16) // 4
        lifted = lift(e)
        assert isinstance(lifted, ShiftRight)
        assert lifted.shift == 2

    def test_select_becomes_mux(self):
        e = B.select(B.lt(u8v(0), u8v(1)), u8v(2), u8v(3))
        lifted = lift(e)
        assert isinstance(lifted, Mux)
        assert lifted.op == "lt"

    def test_le_swaps_arms(self):
        e = B.select(B.le(u8v(0), u8v(1)), u8v(2), u8v(3))
        lifted = lift(e)
        assert lifted.op == "gt"
        assert lifted.t == LoadData("in", 3, 128, U8)

    def test_vector_vector_multiply(self):
        e = B.widen(u8v(0)) * B.widen(u8v(1))
        lifted = lift(e)
        assert isinstance(lifted, VvMpyAdd)

    def test_vv_accumulator_attaches(self):
        acc = B.load("acc", 0, 128, U16)
        e = acc + B.widen(u8v(0)) * B.widen(u8v(1))
        lifted = lift(e)
        assert isinstance(lifted, VvMpyAdd)
        assert lifted.acc == LoadData("acc", 0, 128, U16)


class TestDriver:
    def test_unsupported_raises(self):
        e = B.mod(B.load("in", 0, 128, U16), B.load("m", 0, 128, U16))
        with pytest.raises(UnsupportedExpressionError):
            lift(e)

    def test_trace_records_rules(self):
        lifter = Lifter(Oracle())
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        lifter.lift(row)
        rules = [s.rule for s in lifter.trace]
        assert "extend" in rules  # leaf loads
        assert "update" in rules  # kernel growth
        assert "replace" in rules  # widen -> vs-mpy-add

    def test_every_lift_is_verified(self):
        oracle = Oracle()
        lifter = Lifter(oracle)
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        lifted = lifter.lift(row)
        # independent check with a fresh oracle
        assert Oracle().equivalent(row, lifted)

    def test_queries_attributed_to_lifting(self):
        oracle = Oracle()
        Lifter(oracle).lift(B.widen(u8v()) + B.widen(u8v(1)))
        assert oracle.stats.stages["lifting"].queries > 0
        assert oracle.stats.stages["sketching"].queries == 0
