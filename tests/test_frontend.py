"""Tests for the mini-Halide frontend: algorithms, schedules, lowering."""

import pytest

from repro.errors import LoweringError, ScheduleError
from repro.frontend import (
    FParam,
    Func,
    ImageParam,
    Var,
    fabsd,
    fcast,
    fclamp,
    fmax,
    fselect,
    lower_pipeline,
    reachable_funcs,
)
from repro.frontend.lowering import DEFAULT_ROW_STRIDE, _index_affine, Affine
from repro.ir import expr as E
from repro.ir.traversal import loads_of
from repro.types import I32, U16, U8


def make_blur():
    x, y = Var("x"), Var("y")
    inp = ImageParam("input", U8, 2)
    in16 = Func("t_in16", U16)
    in16[x, y] = fcast(U16, inp(x, y))
    out = Func("t_blur", U8)
    out[x, y] = fcast(
        U8, (in16(x - 1, y) + 2 * in16(x, y) + in16(x + 1, y) + 2) >> 2
    )
    return out


class TestFuncDefinition:
    def test_double_definition_rejected(self):
        x = Var("x")
        f = Func("f", U8)
        f[x] = fcast(U8, 0)
        with pytest.raises(ScheduleError):
            f[x] = fcast(U8, 1)

    def test_non_var_key_rejected(self):
        f = Func("f", U8)
        with pytest.raises(ScheduleError):
            f[3] = fcast(U8, 0)

    def test_update_requires_definition(self):
        f = Func("f", U8)
        with pytest.raises(ScheduleError):
            f.update(fcast(U8, 0))

    def test_image_param_arity(self):
        inp = ImageParam("i", U8, 2)
        x = Var("x")
        with pytest.raises(ScheduleError):
            inp(x)

    def test_schedule_chaining(self):
        f = make_blur().hexagon().tile(128, 4).vectorize(64).prefetch(2)
        assert f.schedule.hexagon
        assert f.schedule.tile == (128, 4)
        assert f.schedule.vectorize_lanes == 64
        assert f.schedule.prefetch == 2


class TestAffine:
    def test_var_plus_const(self):
        x = Var("x")
        aff = _index_affine(x + 3, {x: Affine({x: 1}, 0)})
        assert aff.coeff(x) == 1 and aff.const == 3

    def test_scaled(self):
        x = Var("x")
        aff = _index_affine(2 * x + 1, {x: Affine({x: 1}, 0)})
        assert aff.coeff(x) == 2 and aff.const == 1

    def test_shift_as_scale(self):
        x = Var("x")
        aff = _index_affine(x << 2, {x: Affine({x: 1}, 0)})
        assert aff.coeff(x) == 4

    def test_non_affine_rejected(self):
        x = Var("x")
        with pytest.raises(LoweringError):
            _index_affine(x * x, {x: Affine({x: 1}, 0)})


class TestLowering:
    def test_inline_produces_single_stage(self):
        low = lower_pipeline(make_blur(), lanes=128)
        assert len(low.stages) == 1
        assert low.stages[0].lanes == 128

    def test_loads_have_relative_offsets(self):
        low = lower_pipeline(make_blur(), lanes=128)
        (stage,) = low.stages
        offsets = sorted(ld.offset for ld in loads_of(stage.exprs[0]))
        assert offsets == [-1, 0, 1]

    def test_row_offsets_use_row_stride(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        out = Func("vert", U8)
        out[x, y] = fmax(inp(x, y - 1), inp(x, y + 1))
        low = lower_pipeline(out, lanes=128)
        offsets = sorted(ld.offset for ld in loads_of(low.stages[0].exprs[0]))
        assert offsets == [-DEFAULT_ROW_STRIDE, DEFAULT_ROW_STRIDE]

    def test_strided_access(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        out = Func("pool", U8)
        out[x, y] = fmax(inp(2 * x, y), inp(2 * x + 1, y))
        low = lower_pipeline(out, lanes=128)
        loads = loads_of(low.stages[0].exprs[0])
        assert {ld.stride for ld in loads} == {2}
        assert sorted(ld.offset for ld in loads) == [0, 1]

    def test_compute_root_splits_stages(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        mid = Func("t_mid", U16)
        mid[x, y] = fcast(U16, inp(x, y)) * 2
        mid.compute_root()
        out = Func("t_out", U8)
        out[x, y] = fcast(U8, mid(x, y) >> 1)
        low = lower_pipeline(out)
        assert [s.name for s in low.stages] == ["t_mid", "t_out"]
        # the consumer reads the mid buffer, not the input
        assert loads_of(low.stages[1].exprs[0])[0].buffer == "t_mid"

    def test_updates_become_extra_exprs(self):
        x, y, r = Var("x"), Var("y"), Var("r")
        inp = ImageParam("input", U8, 2)
        acc = Func("t_acc", U16)
        acc[x, y] = fcast(U16, inp(x, y))
        acc.update(acc(x, y) + fcast(U16, inp(x, y + r + 1)), extent=7)
        low = lower_pipeline(acc)
        (stage,) = low.stages
        assert len(stage.exprs) == 2
        buffers = {ld.buffer for ld in loads_of(stage.exprs[1])}
        assert buffers == {"t_acc", "input"}

    def test_scalar_param_becomes_scalar_var(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        k = FParam("k", U8)
        out = Func("t_scaled", U16)
        out[x, y] = fcast(U16, inp(x, y)) * fcast(U16, k)
        low = lower_pipeline(out)
        expr = low.stages[0].exprs[0]
        names = [n.name for n in expr if isinstance(n, E.ScalarVar)]
        assert names == ["k"]

    def test_select_lowering(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        out = Func("t_sel", U8)
        out[x, y] = fselect(inp(x, y) > inp(x + 1, y), inp(x, y), 0)
        low = lower_pipeline(out)
        expr = low.stages[0].exprs[0]
        assert any(isinstance(n, E.Select) for n in expr)

    def test_vector_var_in_wrong_dim_rejected(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        out = Func("t_bad", U8)
        out[x, y] = inp(y, x)
        with pytest.raises(LoweringError):
            lower_pipeline(out)

    def test_qualifying_expressions_skip_trivial(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        copy = Func("t_copy", U8)
        copy[x, y] = inp(x, y)
        low = lower_pipeline(copy)
        assert low.vector_expressions() == []

    def test_reachable_funcs_order(self):
        out = make_blur()
        funcs = reachable_funcs(out)
        assert funcs[-1] is out
