"""The shared verdict-cache tier: wire protocol, degradation, adapter.

The server/client pair is exercised over real sockets; the
:class:`TieredOracleCache` adapter is pinned against the exact
``OracleCache`` surface the synthesis engine consumes.  The outage
tests are the contract the cluster stands on: a dead, lying or
fault-injected tier degrades to node-local caching, silently.
"""

import socket
import struct

import pytest

from repro import faults
from repro.cluster.cachetier import (
    CacheTierClient,
    CacheTierServer,
    TieredOracleCache,
    parse_address,
)
from repro.faults import FaultPlan, FaultRule
from repro.synthesis.engine import OracleCache


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


@pytest.fixture
def tier():
    server = CacheTierServer().start()
    yield server
    server.shutdown()


@pytest.fixture
def tier_client(tier):
    client = CacheTierClient(tier.endpoint)
    yield client
    client.close()


class TestWireProtocol:
    def test_put_then_get_roundtrip(self, tier_client):
        assert tier_client.get("k1") is None
        assert tier_client.put("k1", True)
        assert tier_client.get("k1") is True
        assert tier_client.put("k2", False)
        assert tier_client.get("k2") is False

    def test_ping_and_stats(self, tier_client):
        assert tier_client.ping()
        tier_client.put("k", True)
        tier_client.get("k")
        stats = tier_client.server_stats()
        assert stats["puts"] == 1
        assert stats["gets"] == 1
        assert stats["hits"] == 1
        assert stats["verdicts"] == 1

    def test_malformed_put_is_rejected_not_stored(self, tier):
        # A put with a non-bool verdict must not poison the store.
        assert tier.dispatch({"op": "put", "k": "k", "v": "yes"})["ok"] is False
        assert tier.dispatch({"op": "get", "k": "k"})["hit"] is False
        assert tier.stats["bad_frames"] == 1

    def test_unknown_op_answers_error_frame(self, tier):
        reply = tier.dispatch({"op": "explode"})
        assert reply["ok"] is False and "unknown op" in reply["error"]

    def test_corrupt_frame_closes_connection_cleanly(self, tier):
        # A frame whose CRC does not verify decodes to None server-side;
        # the connection ends, the server survives for the next client.
        host, port = tier.address
        with socket.create_connection((host, port), timeout=2) as sock:
            payload = b'{"op":"get","k":"x","crc":1}'  # wrong CRC
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            assert sock.recv(4) == b""  # server closed on us
        client = CacheTierClient(tier.endpoint)
        try:
            assert client.ping()
        finally:
            client.close()

    def test_persisted_tier_survives_restart(self, tmp_path):
        first = CacheTierServer(cache_dir=str(tmp_path)).start()
        client = CacheTierClient(first.endpoint)
        client.put("durable", True)
        client.close()
        first.shutdown()
        second = CacheTierServer(cache_dir=str(tmp_path)).start()
        client = CacheTierClient(second.endpoint)
        try:
            assert client.get("durable") is True
        finally:
            client.close()
            second.shutdown()

    def test_parse_address_defaults_host(self):
        assert parse_address(":8547") == ("127.0.0.1", 8547)
        assert parse_address("10.0.0.2:99") == ("10.0.0.2", 99)


class TestClientDegradation:
    def test_dead_tier_degrades_to_miss_and_drop(self):
        client = CacheTierClient("127.0.0.1:9", timeout=0.2,
                                 trip_threshold=2, cooldown_s=60.0)
        assert client.get("k") is None
        assert client.put("k", True) is False
        assert client.stats["errors"] == 2
        # Third call lands inside the tripped window: skipped, no socket.
        assert client.get("k") is None
        assert client.stats["skipped"] == 1

    def test_tripped_client_recovers_after_cooldown(self, tier):
        client = CacheTierClient(tier.endpoint, trip_threshold=1,
                                 cooldown_s=0.05)
        with faults.injected(FaultPlan(rules=[
            FaultRule(site=faults.SITE_CACHETIER_GET, kind="oserror",
                      on_nth=1, max_fires=1),
        ])):
            assert client.get("k") is None  # injected outage trips it
        import time

        time.sleep(0.06)
        client.put("k", True)
        assert client.get("k") is True
        client.close()

    def test_injected_outage_plan_never_raises(self, tier):
        client = CacheTierClient(tier.endpoint)
        with faults.injected(faults.builtin_plans()["cachetier-outage"]):
            for _ in range(5):
                assert client.get("k") is None
                client.put("k", True)
        client.close()


class TestTieredOracleCache:
    def test_lookup_falls_through_and_backfills(self, tier, tier_client):
        local = OracleCache()
        cache = TieredOracleCache(local, tier_client)
        tier_client.put("shared", True)
        assert cache.lookup("shared") is True
        # Backfilled: a tier outage now cannot lose us the verdict.
        assert local.lookup("shared") is True

    def test_record_publishes_to_tier(self, tier):
        a = TieredOracleCache(OracleCache(), CacheTierClient(tier.endpoint))
        b = TieredOracleCache(OracleCache(), CacheTierClient(tier.endpoint))
        a.record("proved-on-a", False)
        # Node B's first lookup is warmed by node A's publish.
        assert b.lookup("proved-on-a") is False

    def test_counterexamples_stay_local(self, tier, tier_client):
        cache = TieredOracleCache(OracleCache(), tier_client)
        cache.record_counterexample("skey", 3)
        assert cache.counterexample_indices("skey") == [3]
        stats = tier_client.server_stats()
        assert stats["puts"] == 0  # nothing crossed the wire

    def test_outage_mid_compile_degrades_silently(self, tier):
        cache = TieredOracleCache(OracleCache(),
                                  CacheTierClient(tier.endpoint))
        cache.record("before", True)
        tier.shutdown()
        # Tier is gone: locals still serve, writes drop, nothing raises.
        assert cache.lookup("before") is True
        cache.record("during", True)
        assert cache.lookup("during") is True
        assert cache.lookup("never-seen") is None
        assert len(cache) == 2
        cache.flush()
