"""Scheduler tests: admission, priority aging, coalescing, deadlines.

All tests drive :class:`JobScheduler` directly with stub compile
functions, so scheduling policy is pinned without paying for synthesis.
The ``paused`` constructor flag holds workers before they pick jobs,
which is what makes queue-state assertions deterministic.
"""

import threading
import time

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro.errors import ProtocolError, QueueFullError, ServiceError
from repro.service.coalesce import Coalescer, request_key
from repro.service.protocol import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_TIMEOUT,
    CompileRequest,
    CompileResult,
)
from repro.service.scheduler import JobScheduler


def quick_compile(request, cancel, cache):
    return CompileResult(workload=request.workload, backend=request.backend,
                         total_cycles=1)


def cancellable_compile(request, cancel, cache):
    """Spin at query-boundary granularity until cancelled/timed out."""
    for _ in range(2000):
        cancel.check()
        time.sleep(0.005)
    return quick_compile(request, cancel, cache)


def make_scheduler(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("compile_fn", quick_compile)
    return JobScheduler(**kwargs)


def distinct_requests(n):
    """n requests with distinct coalescing keys (different image widths)."""
    return [CompileRequest(workload="mul", width=64 + i) for i in range(n)]


class TestRequestKey:
    def test_identical_requests_share_a_key(self):
        assert request_key(CompileRequest(workload="mul")) == \
            request_key(CompileRequest(workload="mul"))

    def test_scheduling_knobs_do_not_split_keys(self):
        patient = CompileRequest(workload="mul", priority=50, jobs=4,
                                 deadline_s=600)
        urgent = CompileRequest(workload="mul", priority=0, jobs=1)
        assert request_key(patient) == request_key(urgent)

    def test_result_knobs_split_keys(self):
        base = CompileRequest(workload="mul")
        assert request_key(base) != \
            request_key(CompileRequest(workload="mul", backend="baseline"))
        assert request_key(base) != \
            request_key(CompileRequest(workload="mul", width=64))
        assert request_key(base) != \
            request_key(CompileRequest(workload="mul", batch_eval=False))

    def test_different_workloads_differ(self):
        assert request_key(CompileRequest(workload="mul")) != \
            request_key(CompileRequest(workload="add"))

    def test_target_splits_keys(self):
        # An HVX job and a Neon job for the same workload must never
        # coalesce — their results differ in every way that matters.
        assert request_key(CompileRequest(workload="mul")) != \
            request_key(CompileRequest(workload="mul", target="neon"))
        assert request_key(CompileRequest(workload="mul", target="neon")) == \
            request_key(CompileRequest(workload="mul", target="neon"))


class TestCoalescer:
    def test_leader_then_follower(self):
        c = Coalescer()
        job_id, coalesced = c.claim("k", lambda: "job-1")
        assert (job_id, coalesced) == ("job-1", False)
        job_id, coalesced = c.claim("k", lambda: "job-2")
        assert (job_id, coalesced) == ("job-1", True)
        assert c.waiters("k") == 1
        assert c.coalesced_total == 1

    def test_release_opens_a_new_generation(self):
        c = Coalescer()
        c.claim("k", lambda: "job-1")
        c.release("k")
        job_id, coalesced = c.claim("k", lambda: "job-2")
        assert (job_id, coalesced) == ("job-2", False)

    def test_failed_mint_leaves_no_claim(self):
        c = Coalescer()

        def boom():
            raise QueueFullError("full")

        with pytest.raises(QueueFullError):
            c.claim("k", boom)
        assert c.active() == 0


class TestAdmission:
    def test_submit_runs_to_done(self):
        s = make_scheduler()
        try:
            job, coalesced = s.submit(CompileRequest(workload="mul"))
            assert not coalesced
            done = s.wait(job.id, timeout=10)
            assert done.state == JOB_DONE
            assert done.result.total_cycles == 1
            assert done.wait_s is not None and done.run_s is not None
        finally:
            s.shutdown()

    def test_queue_bound_rejects(self):
        s = make_scheduler(queue_size=2, paused=True)
        try:
            reqs = distinct_requests(3)
            s.submit(reqs[0])
            s.submit(reqs[1])
            with pytest.raises(QueueFullError):
                s.submit(reqs[2])
            assert s.metrics.counter("repro_jobs_rejected_total").value == 1
        finally:
            s.shutdown(drain=False)

    def test_invalid_request_rejected_before_queueing(self):
        s = make_scheduler(paused=True)
        try:
            with pytest.raises(ProtocolError):
                s.submit(CompileRequest(workload="mul", backend="llvm"))
            assert s.queue_depth() == 0
        finally:
            s.shutdown(drain=False)

    def test_submit_after_shutdown_rejected(self):
        s = make_scheduler()
        s.shutdown()
        with pytest.raises(ServiceError):
            s.submit(CompileRequest(workload="mul"))

    def test_worker_survives_failing_job(self):
        def flaky(request, cancel, cache):
            if request.width == 64:
                raise RuntimeError("boom")
            return quick_compile(request, cancel, cache)

        s = make_scheduler(compile_fn=flaky)
        try:
            bad, _ = s.submit(CompileRequest(workload="mul", width=64))
            assert s.wait(bad.id, timeout=10).state == JOB_FAILED
            assert "boom" in s.get(bad.id).error
            good, _ = s.submit(CompileRequest(workload="mul", width=65))
            assert s.wait(good.id, timeout=10).state == JOB_DONE
        finally:
            s.shutdown()


class TestCoalescingIntegration:
    def test_identical_inflight_submissions_share_one_job(self):
        s = make_scheduler(paused=True)
        try:
            leader, coalesced1 = s.submit(CompileRequest(workload="mul"))
            follower, coalesced2 = s.submit(CompileRequest(workload="mul"))
            third, coalesced3 = s.submit(
                CompileRequest(workload="mul", priority=0, jobs=4))
            assert not coalesced1 and coalesced2 and coalesced3
            assert leader.id == follower.id == third.id
            assert s.queue_depth() == 1
            assert s.metrics.counter("repro_jobs_coalesced_total").value == 2
            s.resume()
            done = s.wait(leader.id, timeout=10)
            assert done.state == JOB_DONE
            assert done.coalesced_waiters == 2
        finally:
            s.shutdown()

    def test_completed_job_does_not_coalesce_new_submissions(self):
        s = make_scheduler()
        try:
            first, _ = s.submit(CompileRequest(workload="mul"))
            s.wait(first.id, timeout=10)
            second, coalesced = s.submit(CompileRequest(workload="mul"))
            assert not coalesced
            assert second.id != first.id
        finally:
            s.shutdown()


class TestPriorityAging:
    _width = 64

    def _queued(self, s, priority, age_s):
        # Unique width per job: keep coalescing out of these tests.
        type(self)._width += 1
        job, _ = s.submit(
            CompileRequest(workload="mul", width=self._width,
                           priority=priority))
        job.submitted_mono -= age_s  # backdate: pretend it has waited
        return job

    def test_lower_priority_value_runs_first(self):
        s = make_scheduler(paused=True, aging_rate=0.0)
        try:
            low = self._queued(s, priority=20, age_s=0)
            high = self._queued(s, priority=1, age_s=0)
            with s._cond:
                assert s._pick_locked() is high
                assert s._pick_locked() is low
        finally:
            s.shutdown(drain=False)

    def test_aging_lets_old_jobs_overtake(self):
        s = make_scheduler(paused=True, aging_rate=1.0)
        try:
            # A bulk job that has waited 30s has effective priority
            # 50 - 30 = 20; a fresh urgent job sits at 5.
            bulk = self._queued(s, priority=50, age_s=30)
            urgent = self._queued(s, priority=5, age_s=0)
            with s._cond:
                assert s._pick_locked() is urgent
            # Once the bulk job has waited long enough, it wins even
            # against a fresh priority-5 submission.
            bulk.submitted_mono -= 30  # now 60s old: 50 - 60 = -10
            urgent2 = self._queued(s, priority=5, age_s=0)
            with s._cond:
                assert s._pick_locked() is bulk
                assert s._pick_locked() is urgent2
        finally:
            s.shutdown(drain=False)

    def test_fifo_between_equal_scores(self):
        s = make_scheduler(paused=True, aging_rate=0.0)
        try:
            first = self._queued(s, priority=10, age_s=0)
            second = self._queued(s, priority=10, age_s=0)
            first.submitted_mono = second.submitted_mono - 1.0
            with s._cond:
                assert s._pick_locked() is first
        finally:
            s.shutdown(drain=False)


class TestCancellationAndDeadlines:
    def test_cancel_queued_job_never_runs(self):
        ran = []

        def tattling(request, cancel, cache):
            ran.append(request)
            return quick_compile(request, cancel, cache)

        s = make_scheduler(paused=True, compile_fn=tattling)
        try:
            job, _ = s.submit(CompileRequest(workload="mul"))
            assert s.cancel(job.id)
            assert job.state == JOB_CANCELLED
            assert s.queue_depth() == 0
            s.resume()
            assert ran == []
            assert not s.cancel(job.id)  # already terminal
        finally:
            s.shutdown()

    def test_cancel_running_job_frees_the_worker(self):
        s = make_scheduler(compile_fn=cancellable_compile)
        try:
            job, _ = s.submit(CompileRequest(workload="mul"))
            deadline = time.monotonic() + 5
            while job.state == JOB_QUEUED and time.monotonic() < deadline:
                time.sleep(0.01)
            assert s.cancel(job.id)
            assert s.wait(job.id, timeout=10).state == JOB_CANCELLED
            # The (single) worker slot must be free again.
            after = CompileRequest(workload="mul", width=99)
            done, _ = s.submit(after)
            s.compile_fn = quick_compile
            assert s.wait(done.id, timeout=10).state == JOB_DONE
        finally:
            s.shutdown()

    def test_deadline_times_out_the_job(self):
        s = make_scheduler(compile_fn=cancellable_compile)
        try:
            job, _ = s.submit(
                CompileRequest(workload="mul", deadline_s=0.2))
            done = s.wait(job.id, timeout=10)
            assert done.state == JOB_TIMEOUT
            assert s.metrics.counter("repro_jobs_timeout_total").value == 1
        finally:
            s.shutdown()


class TestShutdown:
    def test_drain_finishes_queued_work(self):
        s = make_scheduler(paused=True)
        jobs = [s.submit(r)[0] for r in distinct_requests(3)]
        s.resume()
        assert s.shutdown(drain=True, timeout=10)
        assert all(j.state == JOB_DONE for j in jobs)

    def test_non_drain_cancels_queued_work(self):
        s = make_scheduler(paused=True)
        jobs = [s.submit(r)[0] for r in distinct_requests(3)]
        s.shutdown(drain=False, timeout=10)
        assert all(j.state == JOB_CANCELLED for j in jobs)

    def test_shutdown_flushes_shared_disk_store(self, tmp_path):
        from repro.synthesis.engine import OracleCache

        cache = OracleCache.with_disk(tmp_path)

        def recording(request, cancel, cache):
            cache.record("k" * 64, True)
            return quick_compile(request, cancel, cache)

        s = make_scheduler(cache=cache, compile_fn=recording)
        job, _ = s.submit(CompileRequest(workload="mul"))
        s.wait(job.id, timeout=10)
        s.shutdown()
        assert (tmp_path / "oracle.jsonl").read_text().strip() != ""


class TestConcurrentSubmissions:
    def test_many_threads_one_leader(self):
        s = make_scheduler(paused=True, queue_size=64)
        try:
            results = []
            barrier = threading.Barrier(8)

            def submit():
                barrier.wait()
                results.append(s.submit(CompileRequest(workload="mul")))

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ids = {job.id for job, _ in results}
            assert len(ids) == 1
            assert sum(1 for _, coalesced in results if coalesced) == 7
            s.resume()
            assert s.wait(ids.pop(), timeout=10).state == JOB_DONE
        finally:
            s.shutdown()


class TestIdempotency:
    def test_retried_key_replays_onto_the_original_job(self):
        s = make_scheduler(paused=True)
        try:
            request = CompileRequest(workload="mul", idempotency_key="k1")
            first, coalesced1 = s.submit(request)
            second, coalesced2 = s.submit(request)
            assert second.id == first.id
            assert not coalesced1
            assert coalesced2 == "idempotent"  # truthy, but distinguishable
            metrics = s.metrics.as_dict()
            assert metrics["repro_jobs_idempotent_total"] == 1
            assert metrics["repro_jobs_submitted_total"] == 1
        finally:
            s.resume()
            s.shutdown()

    def test_replay_works_after_the_job_went_terminal(self):
        # Coalescing releases its key at terminal states; idempotency
        # must NOT — a retry of a finished submission gets the finished
        # job back, never a re-run.
        s = make_scheduler()
        try:
            request = CompileRequest(workload="mul", idempotency_key="k2")
            job, _ = s.submit(request)
            assert s.wait(job.id, timeout=10).state == JOB_DONE
            replay, coalesced = s.submit(request)
            assert replay.id == job.id
            assert coalesced == "idempotent"
            assert replay.state == JOB_DONE
        finally:
            s.shutdown()

    def test_distinct_keys_mint_distinct_jobs(self):
        s = make_scheduler(paused=True)
        try:
            a, _ = s.submit(CompileRequest(workload="mul", width=64,
                                           idempotency_key="ka"))
            b, _ = s.submit(CompileRequest(workload="mul", width=65,
                                           idempotency_key="kb"))
            assert a.id != b.id
        finally:
            s.resume()
            s.shutdown()

    def test_coalesced_submission_key_replays_onto_leader(self):
        s = make_scheduler(paused=True)
        try:
            leader, _ = s.submit(CompileRequest(workload="mul"))
            follower_req = CompileRequest(workload="mul",
                                          idempotency_key="kc")
            follower, coalesced = s.submit(follower_req)
            assert follower.id == leader.id and coalesced is True
            replay, coalesced2 = s.submit(follower_req)
            assert replay.id == leader.id
            assert coalesced2 == "idempotent"
        finally:
            s.resume()
            s.shutdown()

    def test_node_identity_stamped_into_views(self):
        s = make_scheduler(node_id="node-x")
        try:
            job, _ = s.submit(CompileRequest(workload="mul"),
                              routed_by="router-1")
            view = s.wait(job.id, timeout=10).view()
            assert view.node_id == "node-x"
            assert view.routed_by == "router-1"
        finally:
            s.shutdown()
