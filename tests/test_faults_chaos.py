"""The chaos acceptance invariant, replayed per built-in fault plan.

Under any built-in plan a compile must end one of exactly three ways:

1. a **byte-identical program** to the fault-free compile,
2. a **degraded baseline** lowering explicitly marked ``degraded``, or
3. a **typed error** (``ReproError`` subclass),

and never a wrong program, a corrupted persisted cache, or a hang past
its deadline.  The same seed must also reproduce the same injection
trace — that's what makes a chaos failure debuggable.
"""

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro import faults
from repro.errors import DeadlineExceededError
from repro.hvx import program_listing
from repro.pipeline import compile_pipeline
from repro.service import CompileRequest, CompileServer, ServiceClient
from repro.service.protocol import JOB_DONE
from repro.synthesis.engine import DiskStore, OracleCache, decode_record
from repro.workloads.base import get

WORKLOAD = "mul"


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def listings(compiled):
    return [
        (cs.name, ce.selector, program_listing(ce.program))
        for cs in compiled.stages for ce in cs.exprs
    ]


@pytest.fixture(scope="module")
def clean_reference():
    """Listings from a fault-free compile — the soundness yardstick."""
    wl = get(WORKLOAD)
    return listings(compile_pipeline(wl.build(), cache=OracleCache()))


class TestWorkerCrashPlan:
    def test_compile_is_byte_identical_after_retry(self, clean_reference):
        wl = get(WORKLOAD)
        plan = faults.load_plan("worker-crash")
        with faults.injected(plan):
            compiled = compile_pipeline(
                wl.build(), jobs=2, cache=OracleCache())
        assert listings(compiled) == clean_reference
        assert not compiled.degraded
        assert plan.injected_total() == 1
        assert plan.by_site() == {"engine.batch": 1}

    def test_same_seed_same_injection_trace(self):
        wl = get(WORKLOAD)
        traces = []
        for _ in range(2):
            plan = faults.load_plan("worker-crash")
            with faults.injected(plan):
                compile_pipeline(wl.build(), jobs=2, cache=OracleCache())
            traces.append(plan.trace())
        assert traces[0] == traces[1]


class TestTornCachePlan:
    def test_compile_clean_and_store_reloads_valid(self, tmp_path,
                                                   clean_reference):
        wl = get(WORKLOAD)
        cache = OracleCache(store=DiskStore(tmp_path / "oracle.jsonl"))
        with faults.injected(faults.load_plan("torn-cache")):
            compiled = compile_pipeline(wl.build(), cache=cache)
            cache.flush()
        assert listings(compiled) == clean_reference

        # The persisted store is never *corrupt*: a fresh load skips any
        # torn tail, quarantines, and leaves a fully decodable file.
        store = DiskStore(tmp_path / "oracle.jsonl")
        for line in (tmp_path / "oracle.jsonl").read_text().splitlines():
            assert decode_record(line) is not None

        # Every surviving verdict must agree with a clean recompile that
        # warm-loads it: wrong verdicts would change the output program.
        warm = compile_pipeline(wl.build(), cache=OracleCache(store=store))
        assert listings(warm) == clean_reference


class TestSlowOraclePlan:
    def test_deadline_yields_typed_timeout_not_a_hang(self):
        wl = get(WORKLOAD)
        with faults.injected(faults.load_plan("slow-oracle")):
            with pytest.raises(DeadlineExceededError):
                compile_pipeline(
                    wl.build(), cache=OracleCache(), deadline_s=0.1)

    def test_without_deadline_result_is_byte_identical(self, clean_reference):
        plan = faults.load_plan("slow-oracle")
        # Keep the injected latency tiny: correctness is what's under
        # test, the built-in 20 ms per query is for humans watching CI.
        plan.rules[0].latency_s = 0.0005
        wl = get(WORKLOAD)
        with faults.injected(plan):
            compiled = compile_pipeline(wl.build(), cache=OracleCache())
        assert listings(compiled) == clean_reference
        assert plan.injected_total() > 0


class TestSocketResetPlan:
    def test_client_absorbs_the_reset_end_to_end(self):
        server = CompileServer(workers=1, quiet=True).start()
        try:
            client = ServiceClient(server.url)
            plan = faults.load_plan("socket-reset")
            with faults.injected(plan):
                view = client.compile(
                    CompileRequest(workload=WORKLOAD), timeout=120)
            assert view.state == JOB_DONE
            assert not view.degraded
            assert view.result.total_cycles > 0
            assert plan.injected_total() == 1
        finally:
            server.shutdown()


class TestDegradedFallback:
    def test_synthesis_crash_degrades_to_verified_baseline(self):
        """Past the retry budget, the pipeline substitutes the baseline
        lowering and says so — outcome (2) of the invariant."""
        wl = get(WORKLOAD)
        baseline = compile_pipeline(wl.build(), backend="baseline")
        # Crash the very first oracle query: synthesis dies mid-lifting,
        # but the final verification of the substituted baseline (later
        # queries) still runs and proves it.
        plan = faults.FaultPlan(rules=[
            faults.FaultRule(site=faults.SITE_ORACLE_QUERY, kind="error",
                             on_nth=1, max_fires=1),
        ])
        with faults.injected(plan):
            compiled = compile_pipeline(wl.build(), cache=OracleCache())
        assert compiled.degraded
        assert compiled.degraded_exprs >= 1
        assert listings(compiled) == listings(baseline)
