"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "sobel"])
        assert args.backend == "both"
        assert not args.show_programs

    def test_isa_filters(self):
        args = build_parser().parse_args(
            ["isa", "--target", "neon", "--group", "narrow"])
        assert args.target == "neon"
        assert args.group == "narrow"

    def test_compile_engine_flags(self):
        args = build_parser().parse_args(
            ["compile", "sobel", "--jobs", "4", "--stats-json", "s.json",
             "--cache-dir", "/tmp/c"])
        assert args.jobs == 4
        assert args.stats_json == "s.json"
        assert args.cache_dir == "/tmp/c"
        assert not args.cache

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["compile", "sobel"])
        assert args.jobs == 1
        assert args.stats_json is None
        assert args.cache_dir is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8347
        assert args.port_file is None
        assert not args.quiet

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--queue-size", "16",
             "--cache-dir", "/tmp/c", "--port-file", "p.txt", "--quiet"])
        assert args.port == 0
        assert args.workers == 4
        assert args.queue_size == 16
        assert args.port_file == "p.txt"
        assert args.quiet

    def test_submit_flags(self):
        args = build_parser().parse_args(
            ["submit", "sobel", "--url", "http://127.0.0.1:9000",
             "--priority", "3", "--deadline", "30", "--wait"])
        assert args.workload == "sobel"
        assert args.url == "http://127.0.0.1:9000"
        assert args.priority == 3
        assert args.deadline == 30.0
        assert args.wait

    def test_status_job_optional(self):
        assert build_parser().parse_args(["status"]).job is None
        assert build_parser().parse_args(["status", "abc123"]).job == "abc123"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sobel" in out and "depthwise_conv" in out
        assert out.count("\n") >= 22

    def test_isa_all(self, capsys):
        assert main(["isa"]) == 0
        out = capsys.readouterr().out
        assert "vtmpy" in out and "neon.vmlal" in out

    def test_isa_neon_only(self, capsys):
        assert main(["isa", "--target", "neon"]) == 0
        out = capsys.readouterr().out
        assert "neon.vmull" in out
        assert "\nvtmpy" not in out

    def test_isa_group_filter(self, capsys):
        assert main(["isa", "--target", "hvx", "--group", "sliding"]) == 0
        out = capsys.readouterr().out
        assert "vtmpy" in out
        assert "vadd " not in out

    def test_compile_unknown_workload(self, capsys):
        assert main(["compile", "nonexistent"]) == 2

    def test_compile_baseline_only(self, capsys):
        assert main(["compile", "mul", "--backend", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_compile_both_reports_speedup(self, capsys):
        assert main(["compile", "mul", "--backend", "both",
                     "--show-programs"]) == 0
        out = capsys.readouterr().out
        assert "speedup:" in out
        assert "vmpy" in out  # a program listing was printed

    def test_speedups_single(self, capsys):
        assert main(["speedups", "--only", "dilate3x3"]) == 0
        out = capsys.readouterr().out
        assert "dilate3x3" in out and "geomean" in out

    def test_compile_engine_summary_and_stats_json(self, capsys, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        assert main(["compile", "mul", "--backend", "rake",
                     "--stats-json", str(stats_path),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "synthesis engine:" in out
        assert "hit rate" in out
        stats = json.loads(stats_path.read_text())
        assert stats["totals"]["queries"] > 0
        assert set(stats["stages"]) == {
            "lifting", "sketching", "swizzling", "verify"}
        assert (tmp_path / "cache" / "oracle.jsonl").exists()

    def test_compile_warm_cache_all_hits(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["compile", "mul", "--backend", "rake",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["compile", "mul", "--backend", "rake",
                     "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "100% hit rate" in out

    def test_compile_jobs_flag_end_to_end(self, capsys):
        assert main(["compile", "mul", "--backend", "rake",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out


class TestErrorHandling:
    """Operator mistakes get one-line errors and a nonzero exit — never a
    traceback."""

    def _blocked_path(self, tmp_path, *more):
        # A path whose parent is a *file*: unwritable even when the test
        # runs as root (which ignores permission bits).
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        return str(blocker.joinpath(*more))

    def test_unknown_workload_message(self, capsys):
        assert main(["compile", "nonexistent"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown workload")
        assert "repro list" in err
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_speedups_unknown_only(self, capsys):
        assert main(["speedups", "--only", "mul", "nonexistent"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "nonexistent" in err
        assert "Traceback" not in err

    def test_unwritable_cache_dir(self, capsys, tmp_path):
        bad = self._blocked_path(tmp_path, "cache")
        assert main(["compile", "mul", "--cache-dir", bad]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_unwritable_stats_json(self, capsys, tmp_path):
        bad = self._blocked_path(tmp_path, "stats.json")
        assert main(["compile", "mul", "--stats-json", bad]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_stats_json_probe_keeps_existing_file(self, capsys, tmp_path):
        # The writability probe must not clobber a file that already has
        # content: probing opens in append mode.
        stats = tmp_path / "stats.json"
        stats.write_text("precious")
        assert main(["compile", "nonexistent",
                     "--stats-json", str(stats)]) == 2
        assert stats.read_text() == "precious"

    def test_submit_unreachable_server(self, capsys):
        # Port 1 is reserved and closed; connection is refused instantly.
        assert main(["submit", "mul", "--url", "http://127.0.0.1:1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot reach compile server")
        assert "Traceback" not in err

    def test_status_unreachable_server(self, capsys):
        assert main(["status", "--url", "http://127.0.0.1:1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestTraceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace", "mul"])
        assert args.backend == "rake"
        assert args.jobs == 1
        assert args.depth == 4
        assert args.format == "chrome"
        assert args.trace_out is None

    def test_global_logging_flags(self):
        args = build_parser().parse_args(
            ["--log-level", "debug", "--log-json", "list"])
        assert args.log_level == "debug"
        assert args.log_json

    def test_trace_prints_timeline(self, capsys):
        assert main(["trace", "mul"]) == 0
        out = capsys.readouterr().out
        assert "trace " in out
        assert "pipeline.compile" in out
        assert "lifting" in out

    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        import json

        from repro.trace.export import validate_chrome_trace

        path = tmp_path / "t.json"
        assert main(["trace", "mul", "--trace-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"pipeline.compile", "lifting", "sketch", "swizzle",
                "oracle.query"} <= names

    def test_trace_flame_format(self, capsys, tmp_path):
        path = tmp_path / "flame.txt"
        assert main(["trace", "mul", "--trace-out", str(path),
                     "--format", "flame"]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_trace_unknown_workload(self, capsys):
        assert main(["trace", "nonexistent"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err

    def test_compile_trace_out(self, capsys, tmp_path):
        import json

        from repro.trace.export import validate_chrome_trace

        path = tmp_path / "c.json"
        assert main(["compile", "mul", "--backend", "rake",
                     "--trace-out", str(path)]) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        assert validate_chrome_trace(json.loads(path.read_text())) == []
