"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "sobel"])
        assert args.backend == "both"
        assert not args.show_programs

    def test_isa_filters(self):
        args = build_parser().parse_args(
            ["isa", "--target", "neon", "--group", "narrow"])
        assert args.target == "neon"
        assert args.group == "narrow"

    def test_compile_engine_flags(self):
        args = build_parser().parse_args(
            ["compile", "sobel", "--jobs", "4", "--stats-json", "s.json",
             "--cache-dir", "/tmp/c"])
        assert args.jobs == 4
        assert args.stats_json == "s.json"
        assert args.cache_dir == "/tmp/c"
        assert not args.cache

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["compile", "sobel"])
        assert args.jobs == 1
        assert args.stats_json is None
        assert args.cache_dir is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sobel" in out and "depthwise_conv" in out
        assert out.count("\n") >= 22

    def test_isa_all(self, capsys):
        assert main(["isa"]) == 0
        out = capsys.readouterr().out
        assert "vtmpy" in out and "neon.vmlal" in out

    def test_isa_neon_only(self, capsys):
        assert main(["isa", "--target", "neon"]) == 0
        out = capsys.readouterr().out
        assert "neon.vmull" in out
        assert "\nvtmpy" not in out

    def test_isa_group_filter(self, capsys):
        assert main(["isa", "--target", "hvx", "--group", "sliding"]) == 0
        out = capsys.readouterr().out
        assert "vtmpy" in out
        assert "vadd " not in out

    def test_compile_unknown_workload(self, capsys):
        assert main(["compile", "nonexistent"]) == 2

    def test_compile_baseline_only(self, capsys):
        assert main(["compile", "mul", "--backend", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_compile_both_reports_speedup(self, capsys):
        assert main(["compile", "mul", "--backend", "both",
                     "--show-programs"]) == 0
        out = capsys.readouterr().out
        assert "speedup:" in out
        assert "vmpy" in out  # a program listing was printed

    def test_speedups_single(self, capsys):
        assert main(["speedups", "--only", "dilate3x3"]) == 0
        out = capsys.readouterr().out
        assert "dilate3x3" in out and "geomean" in out

    def test_compile_engine_summary_and_stats_json(self, capsys, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        assert main(["compile", "mul", "--backend", "rake",
                     "--stats-json", str(stats_path),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "synthesis engine:" in out
        assert "hit rate" in out
        stats = json.loads(stats_path.read_text())
        assert stats["totals"]["queries"] > 0
        assert set(stats["stages"]) == {
            "lifting", "sketching", "swizzling", "verify"}
        assert (tmp_path / "cache" / "oracle.jsonl").exists()

    def test_compile_warm_cache_all_hits(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["compile", "mul", "--backend", "rake",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["compile", "mul", "--backend", "rake",
                     "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "100% hit rate" in out

    def test_compile_jobs_flag_end_to_end(self, capsys):
        assert main(["compile", "mul", "--backend", "rake",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
