"""Extended functional-execution tests: strided access, multi-stage
pipelines, channel reductions — each backend against the IR reference."""

import pytest

import repro.workloads  # noqa: F401
from repro.pipeline import compile_pipeline
from repro.sim import Image, execute, reference_execute
from repro.workloads.base import get
from repro.types import U16, U8


def _images(wl, seed=3):
    return {
        spec.name: Image(spec.elem, 256, 24).fill_random(seed + i)
        for i, spec in enumerate(wl.inputs)
    }


def test_camera_pipe_four_stages_strided():
    wl = get("camera_pipe")
    inputs = _images(wl)
    rk = compile_pipeline(wl.build(), backend="rake")
    bl = compile_pipeline(wl.build(), backend="baseline")
    out_r = execute(rk, dict(inputs), 128, 6)
    out_b = execute(bl, dict(inputs), 128, 6)
    ref = reference_execute(rk, dict(inputs), 128, 6)
    for stage in ("cp_denoised", "cp_green", "cp_corrected", "camera_pipe"):
        assert out_r[stage].pixels() == ref[stage].pixels(), stage
        assert out_b[stage].pixels() == ref[stage].pixels(), stage


def test_conv_nn_channel_reduction():
    wl = get("conv_nn")
    inputs = _images(wl)
    rk = compile_pipeline(wl.build(), backend="rake")
    out = execute(rk, dict(inputs), 128, 4)
    ref = reference_execute(rk, dict(inputs), 128, 4)
    assert out["conv_nn"].pixels() == ref["conv_nn"].pixels()


def test_matmul_reduction_matches_reference():
    wl = get("matmul")
    inputs = _images(wl)
    rk = compile_pipeline(wl.build(), backend="rake")
    bl = compile_pipeline(wl.build(), backend="baseline")
    out_r = execute(rk, dict(inputs), 128, 2)
    out_b = execute(bl, dict(inputs), 128, 2)
    ref = reference_execute(rk, dict(inputs), 128, 2)
    assert out_r["matmul"].pixels() == ref["matmul"].pixels()
    assert out_b["matmul"].pixels() == ref["matmul"].pixels()


def test_l2norm_scalar_param_executes():
    wl = get("l2norm")
    inputs = _images(wl)
    rk = compile_pipeline(wl.build(), backend="rake")
    out = execute(rk, dict(inputs), 128, 4, wl.scalars)
    ref = reference_execute(rk, dict(inputs), 128, 4, wl.scalars)
    assert out["l2norm"].pixels() == ref["l2norm"].pixels()


@pytest.mark.parametrize("name", ["gaussian3x3", "conv3x3a16"])
def test_stencils_depend_on_halo(name):
    # stencil outputs must change when halo contents change — proves halo
    # reads actually happen through the full compiled path
    wl = get(name)
    rk = compile_pipeline(wl.build(), backend="rake")
    a = Image(U8, 128, 4).fill_random(1)
    b = Image(U8, 128, 4).fill_random(1)
    b.data[b.origin_of(-1, 0)] = (a.get(-1, 0) + 97) % 256
    out_a = execute(rk, {"input": a}, 128, 4)[name]
    out_b = execute(rk, {"input": b}, 128, 4)[name]
    assert out_a.pixels() != out_b.pixels()
