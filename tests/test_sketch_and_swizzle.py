"""Tests for abstract data movement (Section 4) and swizzle synthesis
(Section 5): every placeholder's realizations implement its optimistic
semantics exactly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.hvx import interp as hvx_interp
from repro.hvx import isa as H
from repro.hvx.cost import INFINITE_COST, Cost, cost_of
from repro.ir.interp import BufferView, Environment
from repro.synthesis.oracle import LAYOUT_INORDER, Oracle
from repro.synthesis.sketch import (
    AbstractPairWindow,
    AbstractRows,
    AbstractSwizzle,
    AbstractWindow,
    SWIZZLE_DEINTERLEAVE,
    SWIZZLE_IDENTITY,
    SWIZZLE_INTERLEAVE,
    is_concrete,
    placeholders_of,
)
from repro.synthesis.swizzle_synth import substitute, synthesize_swizzles
from repro.types import U16, U8


def env(n=512, origin=256):
    return Environment(buffers={"in": BufferView(list(range(n)), U8, origin)})


class TestPlaceholders:
    def test_window_optimistic_semantics(self):
        w = AbstractWindow("in", -3, 8, U8)
        got = hvx_interp.evaluate(w, env())
        assert got.values == env().buffer("in").read(-3, 8)

    @given(st.integers(-32, 32), st.sampled_from([1, 2, 4]))
    @settings(max_examples=40)
    def test_window_realizations_match(self, offset, stride):
        w = AbstractWindow("in", offset, 8, U8, stride)
        want = hvx_interp.evaluate(w, env()).values
        realized = list(w.realizations())
        assert realized
        for impl in realized:
            assert is_concrete(impl)
            assert hvx_interp.evaluate(impl, env()).values == want

    @given(st.integers(-32, 32))
    @settings(max_examples=30)
    def test_pair_window_realizations_match(self, offset):
        w = AbstractPairWindow("in", offset, 16, U8)
        want = hvx_interp.evaluate(w, env()).values
        for impl in w.realizations():
            assert hvx_interp.evaluate(impl, env()).values == want

    def test_rows_realizations_match(self):
        rows = AbstractRows("in", -1, "in", 9, 8, U8)
        want = hvx_interp.evaluate(rows, env()).values
        for impl in rows.realizations():
            assert hvx_interp.evaluate(impl, env()).values == want

    def test_swizzle_modes(self):
        pair = H.HvxInstr("vcombine", (
            H.HvxLoad("in", 0, 8, U8), H.HvxLoad("in", 8, 8, U8)))
        ident = AbstractSwizzle(pair, SWIZZLE_IDENTITY)
        assert hvx_interp.evaluate(ident, env()).values == \
            hvx_interp.evaluate(pair, env()).values
        inter = AbstractSwizzle(pair, SWIZZLE_INTERLEAVE)
        (only,) = list(inter.realizations())
        assert only.op == "vshuffvdd"
        assert hvx_interp.evaluate(inter, env()).values == \
            hvx_interp.evaluate(only, env()).values

    def test_bad_swizzle_mode(self):
        with pytest.raises(EvaluationError):
            AbstractSwizzle(H.HvxLoad("in", 0, 8, U8), "transpose")

    def test_placeholders_found(self):
        w = AbstractWindow("in", 0, 8, U8)
        expr = H.HvxInstr("vadd", (w, w))
        assert placeholders_of(expr) == [w, w]
        assert not is_concrete(expr)


class TestSubstitute:
    def test_replaces_all_occurrences(self):
        w = AbstractWindow("in", 0, 8, U8)
        expr = H.HvxInstr("vadd", (w, w))
        load = H.HvxLoad("in", 0, 8, U8)
        out = substitute(expr, w, load)
        assert is_concrete(out)
        assert out.args == (load, load)


class TestSwizzleSynthesis:
    def test_concretizes_and_verifies(self, oracle):
        from repro.ir import builder as B

        spec = B.load("in", -3, 8, U8)
        sketch = AbstractWindow("in", -3, 8, U8)
        result = synthesize_swizzles(spec, sketch, LAYOUT_INORDER, oracle,
                                     INFINITE_COST)
        assert result is not None
        impl, cost = result
        assert is_concrete(impl)
        assert oracle.equivalent(spec, impl)

    def test_budget_rejection(self, oracle):
        from repro.ir import builder as B

        spec = B.load("in", -3, 8, U8)
        sketch = AbstractWindow("in", -3, 8, U8)
        zero_budget = cost_of(H.HvxLoad("in", 0, 8, U8))  # 1 aligned load
        result = synthesize_swizzles(spec, sketch, LAYOUT_INORDER, oracle,
                                     zero_budget)
        assert result is None

    def test_picks_cheapest_first(self, oracle):
        from repro.ir import builder as B

        spec = B.load("in", 0, 8, U8)  # aligned
        sketch = AbstractWindow("in", 0, 8, U8)
        impl, cost = synthesize_swizzles(spec, sketch, LAYOUT_INORDER, oracle,
                                         INFINITE_COST)
        assert isinstance(impl, H.HvxLoad)
        assert impl.aligned
