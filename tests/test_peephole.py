"""Tests for the baseline's interleave-cancellation peephole pass."""

from repro.baseline import cleanup
from repro.hvx import isa as H
from repro.synthesis.oracle import Oracle
from repro.ir import builder as B
from repro.types import U16, U8


def load(offset=0, lanes=128):
    return H.HvxLoad("in", offset, lanes, U8)


def pair():
    return H.HvxInstr("vcombine", (load(0), load(128)))


def test_shuffle_of_deal_cancels():
    e = H.HvxInstr("vshuffvdd", (H.HvxInstr("vdealvdd", (pair(),)),))
    assert cleanup(e) == pair()


def test_deal_of_shuffle_cancels():
    e = H.HvxInstr("vdealvdd", (H.HvxInstr("vshuffvdd", (pair(),)),))
    assert cleanup(e) == pair()


def test_lo_of_combine():
    e = H.HvxInstr("lo", (pair(),))
    assert cleanup(e) == load(0)
    e = H.HvxInstr("hi", (pair(),))
    assert cleanup(e) == load(128)


def test_combine_of_halves():
    z = H.HvxInstr("vzxt", (load(),))
    e = H.HvxInstr("vcombine", (H.HvxInstr("lo", (z,)),
                                H.HvxInstr("hi", (z,))))
    assert cleanup(e) == z


def test_retype_roundtrip_cancels():
    e = H.HvxInstr("retype_u", (H.HvxInstr("retype_i", (load(),)),))
    assert cleanup(e) == load()


def test_nested_fixpoint():
    inner = H.HvxInstr("vshuffvdd", (H.HvxInstr("vdealvdd", (pair(),)),))
    e = H.HvxInstr("vdealvdd", (H.HvxInstr("vshuffvdd", (inner,)),))
    assert cleanup(e) == pair()


def test_separated_shuffles_survive():
    # a computation between the shuffles blocks the local pass — the gap
    # the paper says Halide's pass has and Rake's layout search closes
    dealt = H.HvxInstr("vdealvdd", (pair(),))
    computed = H.HvxInstr("vadd", (dealt, dealt))
    e = H.HvxInstr("vshuffvdd", (computed,))
    assert cleanup(e) == e


def test_cleanup_preserves_semantics():
    e = H.HvxInstr("vshuffvdd", (H.HvxInstr("vdealvdd", (pair(),)),))
    spec = B.load("in", 0, 256, U8)
    orc = Oracle()
    assert orc.equivalent(spec, e)
    assert orc.equivalent(spec, cleanup(e))
