"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ir.interp import BufferView, Environment
from repro.types import U8, U16


def env_with(name="in", data=None, elem=U8, origin=8, extra=None):
    """A small environment with one (or more) buffers for interp tests."""
    data = data if data is not None else list(range(64))
    buffers = {name: BufferView(data, elem, origin)}
    for other_name, (other_data, other_elem, other_origin) in (extra or {}).items():
        buffers[other_name] = BufferView(other_data, other_elem, other_origin)
    return Environment(buffers=buffers)


@pytest.fixture
def small_env():
    return env_with()


@pytest.fixture
def oracle():
    from repro.synthesis.oracle import Oracle

    return Oracle()
