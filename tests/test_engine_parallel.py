"""Tests for parallel candidate checking (:class:`ParallelChecker`).

The contract under test: any ``jobs`` setting produces byte-identical
synthesis output to serial mode, and any pool failure degrades gracefully
(process → thread → serial) without changing verdicts.
"""

import pytest

from repro import workloads  # noqa: F401 - populate the registry
from repro.hvx import isa as H
from repro.hvx import program_listing
from repro.hvx.cost import cost_of
from repro.ir import builder as B
from repro.pipeline import compile_pipeline
from repro.synthesis.engine import (
    MODE_PROCESS,
    MODE_SERIAL,
    MODE_THREAD,
    ParallelChecker,
)
from repro.synthesis.oracle import LAYOUT_INORDER, Oracle
from repro.types import U8, U16
from repro.workloads.base import get


def u8v(offset=0, lanes=8):
    return B.load("in", offset, lanes, U8)


def _spec_and_candidates():
    spec = B.widen(u8v()) * 2
    candidates = [
        B.widen(u8v()) * 3,                              # wrong
        B.shl(B.widen(u8v()), B.broadcast(1, 8, U16)),   # right
        B.widen(u8v()) * 2,                              # right (later)
    ]
    return spec, candidates


class TestCheckerModes:
    def test_jobs1_is_serial(self):
        assert ParallelChecker(jobs=1).mode == MODE_SERIAL
        assert ParallelChecker(jobs=1, mode=MODE_PROCESS).mode == MODE_SERIAL

    def test_default_parallel_mode_is_process(self):
        checker = ParallelChecker(jobs=2)
        assert checker.mode == MODE_PROCESS
        checker.close()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ParallelChecker(jobs=2, mode="quantum")

    def test_empty_batch(self):
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD)
        oracle = Oracle()
        assert checker.check_batch(oracle, u8v(), [], LAYOUT_INORDER) == []
        assert checker.first_equivalent(
            oracle, u8v(), [], LAYOUT_INORDER) is None
        checker.close()

    def test_small_batch_uses_serial_path(self):
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD, min_batch=10)
        oracle = Oracle()
        spec, candidates = _spec_and_candidates()
        verdicts = checker.check_batch(oracle, spec, candidates, LAYOUT_INORDER)
        assert verdicts == [False, True, True]
        # below min_batch, the caller's oracle ran the checks itself;
        # the second correct candidate shares the shl-form's denotation,
        # so its verdict fans out from the equivalence class
        assert oracle.stats.total_queries == 2
        assert oracle.stats.total_fingerprint_hits == 1
        assert oracle.stats.total_queries + oracle.stats.total_queries_saved == 3
        checker.close()


class TestParallelMatchesSerial:
    def test_thread_batch_matches_serial(self):
        spec, candidates = _spec_and_candidates()
        serial = [Oracle().equivalent(spec, c, LAYOUT_INORDER)
                  for c in candidates]

        checker = ParallelChecker(jobs=2, mode=MODE_THREAD)
        verdicts = checker.check_batch(Oracle(), spec, candidates,
                                       LAYOUT_INORDER)
        checker.close()
        assert verdicts == serial == [False, True, True]

    def test_process_batch_matches_serial(self):
        spec, candidates = _spec_and_candidates()
        checker = ParallelChecker(jobs=2, mode=MODE_PROCESS)
        verdicts = checker.check_batch(Oracle(), spec, candidates,
                                       LAYOUT_INORDER)
        checker.close()
        assert checker.fallbacks == 0
        assert verdicts == [False, True, True]

    def test_first_equivalent_original_order(self):
        # Parallel reduction must pick the first equivalent candidate in
        # the original order, not the first to finish.
        spec, candidates = _spec_and_candidates()
        serial = ParallelChecker(jobs=1)
        threaded = ParallelChecker(jobs=4, mode=MODE_THREAD)
        assert serial.first_equivalent(
            Oracle(), spec, candidates, LAYOUT_INORDER) == 1
        assert threaded.first_equivalent(
            Oracle(), spec, candidates, LAYOUT_INORDER) == 1
        threaded.close()

    def test_first_equivalent_none_when_all_wrong(self):
        spec = B.widen(u8v()) * 2
        wrong = [B.widen(u8v()) * 3, B.widen(u8v()) * 5]
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD)
        assert checker.first_equivalent(
            Oracle(), spec, wrong, LAYOUT_INORDER) is None
        checker.close()

    def test_parallel_verdicts_recorded_in_cache(self):
        spec, candidates = _spec_and_candidates()
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD)
        oracle = Oracle()
        checker.check_batch(oracle, spec, candidates, LAYOUT_INORDER)
        # a second pass answers from the oracle's cache, not the pool
        verdicts = checker.check_batch(oracle, spec, candidates,
                                       LAYOUT_INORDER)
        checker.close()
        assert verdicts == [False, True, True]
        assert oracle.stats.total_cache_hits == 3


class TestDegradation:
    def test_pool_crash_falls_back_to_serial(self, monkeypatch):
        class BrokenPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("worker exploded")

        checker = ParallelChecker(jobs=2, mode=MODE_THREAD)
        monkeypatch.setattr(checker, "_pool", lambda: BrokenPool())
        spec, candidates = _spec_and_candidates()
        verdicts = checker.check_batch(Oracle(), spec, candidates,
                                       LAYOUT_INORDER)
        assert verdicts == [False, True, True]
        assert checker.mode == MODE_SERIAL
        assert checker.fallbacks == 1

    def test_unpicklable_work_degrades_process_to_thread(self):
        class LocalLoad(H.HvxLoad):
            """Defined inside the test: unreachable from worker processes."""

        spec = u8v()
        candidates = [LocalLoad("in", 0, 8, U8), LocalLoad("in", 1, 8, U8)]
        checker = ParallelChecker(jobs=2, mode=MODE_PROCESS)
        verdicts = checker.check_batch(Oracle(), spec, candidates,
                                       LAYOUT_INORDER)
        checker.close()
        assert verdicts == [True, False]
        assert checker.fallbacks >= 1
        assert checker.mode in (MODE_THREAD, MODE_SERIAL)


def _programs(compiled):
    return [program_listing(ce.program)
            for cs in compiled.stages for ce in cs.exprs]


def _costs(compiled):
    return [cost_of(ce.program).key
            for cs in compiled.stages for ce in cs.exprs]


class TestCompilationIdentical:
    @pytest.mark.parametrize("name", ["mul", "dilate3x3", "l2norm"])
    def test_jobs4_matches_serial(self, name):
        wl = get(name)
        serial = compile_pipeline(wl.build(), backend="rake", jobs=1)
        parallel = compile_pipeline(wl.build(), backend="rake", jobs=4)
        assert _programs(parallel) == _programs(serial)
        assert _costs(parallel) == _costs(serial)
        assert parallel.fallbacks == serial.fallbacks
