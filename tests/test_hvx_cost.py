"""Tests for the HVX cost model (paper Section 6) and printers."""

from repro.hvx import cost, isa as H, printer
from repro.ir import builder as B
from repro.types import U16, U8


def load(offset=0, lanes=8):
    return H.HvxLoad("in", offset, lanes, U8)


def vtmpy_expr():
    pair = H.HvxInstr("vcombine", (load(0), load(8)))
    return H.HvxInstr("vshuffvdd", (H.HvxInstr("vtmpy", (pair,), (1, 2)),))


class TestCost:
    def test_counts_by_resource(self):
        c = cost.cost_of(vtmpy_expr())
        counts = dict(c.per_resource)
        assert counts["mpy"] == 1
        assert counts["permute"] == 2  # vcombine + vshuffvdd

    def test_max_resource_is_paper_cost(self):
        c = cost.cost_of(vtmpy_expr())
        assert c.max_resource == 2

    def test_shared_subtrees_counted_once(self):
        t = vtmpy_expr()
        doubled = H.HvxInstr("vadd", (t, t))
        c = cost.cost_of(doubled)
        assert dict(c.per_resource)["mpy"] == 1
        assert c.total == cost.cost_of(t).total + 1

    def test_unaligned_load_costs_double(self):
        aligned = cost.cost_of(load(0))
        unaligned = cost.cost_of(load(3))
        assert unaligned.loads == 2 * aligned.loads

    def test_splats_not_costed(self):
        s = H.HvxSplat(B.const(3, U8), U8, 8)
        c = cost.cost_of(H.HvxInstr("vadd", (load(), s)))
        assert c.splats == 1
        assert c.total == 1

    def test_free_renames_not_costed(self):
        z = H.HvxInstr("vzxt", (load(),))
        c = cost.cost_of(H.HvxInstr("vpacke", (
            H.HvxInstr("hi", (z,)), H.HvxInstr("lo", (z,)))))
        assert c.total == 2  # vzxt + vpacke only

    def test_ordering_key(self):
        cheap = cost.cost_of(load(0))
        rich = cost.cost_of(vtmpy_expr())
        assert cheap < rich
        assert rich < cost.INFINITE_COST

    def test_display_latency_and_loads(self):
        assert cost.display_latency(vtmpy_expr()) == 3
        assert cost.load_count(vtmpy_expr()) == 2

    def test_critical_path(self):
        assert cost.critical_path(vtmpy_expr()) >= 3


class TestPrinter:
    def test_to_string(self):
        s = printer.to_string(vtmpy_expr())
        assert "vtmpy" in s and "vcombine" in s and "0x2" in s

    def test_unaligned_load_marked(self):
        assert printer.to_string(load(3)).startswith("vmemu")
        assert printer.to_string(load(0)).startswith("vmem(")

    def test_splat_prints_scalar(self):
        s = printer.to_string(H.HvxSplat(B.const(7, U8), U8, 8))
        assert s == "vsplat(7)"

    def test_listing_has_cost_header(self):
        listing = printer.program_listing(vtmpy_expr())
        assert listing.startswith("/* Latency: 3, Loads: 2 */")

    def test_pretty_indents_large(self):
        big = H.HvxInstr("vadd", (vtmpy_expr(), vtmpy_expr()))
        assert "\n" in printer.to_pretty(big)
