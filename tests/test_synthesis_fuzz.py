"""Property-based fuzzing of the full synthesis pipeline.

Random stencil expressions are generated from a grammar of the shapes the
frontend produces; for every one of them:

* Rake's selected program must be equivalent to the IR (checked with a
  *fresh* oracle seeded differently from the one used during synthesis),
* the baseline's program must be equivalent too,
* Rake's paper-cost (max per-resource count) must never be worse than the
  baseline's.

This is the strongest invariant in the suite: synthesis may pick any
implementation it likes, but it must never lose to the pattern matcher it
subsumes, and it must never be wrong.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baseline import HalideOptimizer
from repro.errors import ReproError
from repro.hvx.cost import cost_of
from repro.ir import builder as B
from repro.synthesis import RakeSelector
from repro.synthesis.oracle import Oracle
from repro.types import U16, U8

W = 512  # row stride
LANES = 128


@st.composite
def stencil_exprs(draw):
    """Random 1-row / multi-row widening stencils with optional narrowing."""
    n_taps = draw(st.integers(1, 4))
    orientation = draw(st.sampled_from(["h", "v"]))
    weights = draw(st.lists(st.integers(1, 4), min_size=n_taps,
                            max_size=n_taps))
    base = draw(st.integers(-2, 2))
    acc = None
    for k, w in enumerate(weights):
        offset = base + (k if orientation == "h" else k * W)
        term = B.widen(B.load("input", offset, LANES, U8)) * w
        acc = term if acc is None else acc + term
    wrap = draw(st.sampled_from(["none", "narrow", "narrow_round", "sat"]))
    if wrap == "none":
        return acc
    total = sum(weights) * 255
    shift = max(1, total.bit_length() - 8)
    if wrap == "narrow":
        return B.cast(U8, acc >> shift)
    if wrap == "narrow_round":
        return B.cast(U8, (acc + (1 << (shift - 1))) >> shift)
    return B.sat_cast(U8, acc >> max(0, shift - 2))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stencil_exprs())
def test_rake_is_correct_and_never_loses(expr):
    rake = RakeSelector(oracle=Oracle(seed=1))
    program = rake.select(expr).program
    baseline = HalideOptimizer().optimize(expr)

    checker = Oracle(seed=99)  # fresh valuations, different seed
    assert checker.equivalent(expr, program), "rake produced a wrong program"
    assert checker.equivalent(expr, baseline), "baseline produced a wrong program"

    rake_cost = cost_of(program)
    base_cost = cost_of(baseline)
    assert rake_cost.key <= base_cost.key, (
        f"rake lost to the baseline: {rake_cost.key} vs {base_cost.key}"
    )


@st.composite
def elementwise_exprs(draw):
    """Random elementwise min/max/absd trees over u8 loads."""
    depth = draw(st.integers(1, 3))

    def build(d):
        if d == 0:
            return B.load("input", draw(st.integers(-4, 4)), LANES, U8)
        op = draw(st.sampled_from(["min", "max", "absd"]))
        a, b = build(d - 1), build(d - 1)
        if op == "min":
            return B.minimum(a, b)
        if op == "max":
            return B.maximum(a, b)
        return B.absd(a, b)

    return build(depth)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(elementwise_exprs())
def test_elementwise_trees_round_trip(expr):
    rake = RakeSelector(oracle=Oracle(seed=2))
    program = rake.select(expr).program
    assert Oracle(seed=77).equivalent(expr, program)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 6), st.integers(1, 6))
def test_rounding_narrow_family(bias_pow, shift):
    """(x*w + 2^(s-1)) >> s narrowed — the vasrn family's whole domain."""
    w = 1 << bias_pow if bias_pow <= 2 else bias_pow
    acc = B.widen(B.load("input", 0, LANES, U8)) * w
    expr = B.sat_cast(U8, (acc + (1 << (shift - 1))) >> shift)
    program = RakeSelector(oracle=Oracle(seed=3)).select(expr).program
    assert Oracle(seed=55).equivalent(expr, program)
