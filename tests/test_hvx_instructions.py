"""Per-instruction semantics tests for the HVX machine model.

Each test pins the behaviour of one instruction family against hand
computed expectations — the ground truth the synthesis oracle relies on.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeMismatchError
from repro.hvx import isa as H
from repro.hvx import all_instructions, lookup
from repro.hvx.values import PredVec, Vec, VecPair
from repro.types import I16, I32, I8, U16, U32, U8


def run(op, args, imms=()):
    return lookup(op).sem_fn(tuple(args), tuple(imms))


def vec8(*vals, elem=U8):
    return Vec(elem, vals)


class TestRegistry:
    def test_size(self):
        # The HVX family model: dozens of polymorphic instruction families,
        # each standing for several concrete intrinsics.
        assert len(all_instructions()) >= 55

    def test_every_instruction_has_doc_and_resource(self):
        for name, instr in all_instructions().items():
            assert instr.doc, f"{name} missing doc"
            assert instr.resource in ("mpy", "shift", "permute", "alu",
                                      "load", "store", "none")

    def test_unknown_lookup(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            lookup("vbogus")


class TestAlu:
    def test_vadd_wraps(self):
        out = run("vadd", [vec8(250, 1), vec8(10, 2)])
        assert out.values == (4, 3)

    def test_vadd_sat(self):
        out = run("vadd_sat", [vec8(250, 1), vec8(10, 2)])
        assert out.values == (255, 3)

    def test_vadd_mixed_signedness_allowed(self):
        a = Vec(U16, (65535,))
        b = Vec(I16, (1,))
        assert run("vadd", [a, b]).values == (0,)

    def test_vadd_sat_requires_exact_type(self):
        with pytest.raises(TypeMismatchError):
            H.HvxInstr(
                "vadd_sat",
                (H.HvxLoad("a", 0, 4, U8),
                 H.HvxInstr("retype_i", (H.HvxLoad("b", 0, 4, I8),))),
            )

    def test_vsub_sat_signed(self):
        a = Vec(I8, (-120,))
        b = Vec(I8, (100,))
        assert run("vsub_sat", [a, b]).values == (-128,)

    def test_vavg_variants(self):
        a, b = vec8(5), vec8(6)
        assert run("vavg", [a, b]).values == (5,)
        assert run("vavg_rnd", [a, b]).values == (6,)

    def test_vnavg(self):
        assert run("vnavg", [vec8(9), vec8(5)]).values == (2,)

    def test_vabsdiff_unsigned_result(self):
        a = Vec(I16, (-5,))
        b = Vec(I16, (10,))
        out = run("vabsdiff", [a, b])
        assert out.values == (15,)
        assert out.elem == U16

    def test_minmax(self):
        assert run("vmax", [vec8(3), vec8(9)]).values == (9,)
        assert run("vmin", [vec8(3), vec8(9)]).values == (3,)

    def test_logic(self):
        assert run("vand", [vec8(0b1100), vec8(0b1010)]).values == (0b1000,)
        assert run("vor", [vec8(0b1100), vec8(0b1010)]).values == (0b1110,)
        assert run("vxor", [vec8(0b1100), vec8(0b1010)]).values == (0b0110,)
        assert run("vnot", [vec8(0)]).values == (255,)

    def test_cmp_and_mux(self):
        q = run("vcmp_gt", [vec8(5, 1), vec8(3, 3)])
        assert isinstance(q, PredVec)
        assert q.values == (True, False)
        out = run("vmux", [q, vec8(10, 10), vec8(20, 20)])
        assert out.values == (10, 20)

    def test_vzxt_in_order(self):
        out = run("vzxt", [vec8(1, 2, 3, 4)])
        assert isinstance(out, VecPair)
        assert out.elem == U16
        assert out.values == (1, 2, 3, 4)

    def test_vsxt_sign_extends(self):
        out = run("vsxt", [Vec(I8, (-1, 2))])
        assert out.elem == I16
        assert out.values == (-1, 2)

    def test_vzxt_rejects_signed(self):
        with pytest.raises(TypeMismatchError):
            H.HvxInstr("vzxt", (H.HvxLoad("a", 0, 4, I8),))


class TestMultiply:
    def test_vmpy_widening_in_order(self):
        out = run("vmpy", [vec8(10, 20), vec8(3, 4)])
        assert isinstance(out, VecPair)
        assert out.elem == U16
        assert out.values == (30, 80)

    def test_vmpy_signed_product(self):
        out = run("vmpy", [Vec(I8, (-3, 1)), Vec(I8, (5, 2))])
        assert out.elem == I16
        assert out.values == (-15, 2)

    def test_vmpy_acc(self):
        acc = VecPair(U16, (100, 100))
        out = run("vmpy_acc", [acc, vec8(10, 1), vec8(2, 2)])
        assert out.values == (120, 102)

    def test_vmpyi_wraps(self):
        a = Vec(U16, (60000,))
        out = run("vmpyi", [a, Vec(U16, (2,))])
        assert out.values == (U16.wrap(120000),)

    def test_vmpa_two_rows(self):
        rows = VecPair(U8, (1, 2, 10, 20))  # lo = row0, hi = row1
        out = run("vmpa", [rows], imms=(2, 3))
        assert out.values == (1 * 2 + 10 * 3, 2 * 2 + 20 * 3)
        assert out.elem == I16

    def test_vdmpy_pairwise(self):
        v = Vec(U8, (1, 2, 3, 4))
        out = run("vdmpy", [v], imms=(10, 1))
        assert out.values == (12, 34)

    def test_vtmpy_sliding_deinterleaved(self):
        # window x = [1..8]; out[i] = x[i]*2 + x[i+1]*3 + x[i+2]
        p = VecPair(U8, (1, 2, 3, 4, 5, 6, 7, 8))
        out = run("vtmpy", [p], imms=(2, 3))
        x = list(range(1, 9))
        logical = [x[i] * 2 + x[i + 1] * 3 + x[i + 2] for i in range(4)]
        # register order is deinterleaved: evens then odds
        assert out.values == (logical[0], logical[2], logical[1], logical[3])

    def test_vtmpy_acc_layout_matches(self):
        p = VecPair(U8, (1, 2, 3, 4, 5, 6, 7, 8))
        base = run("vtmpy", [p], imms=(1, 1))
        out = run("vtmpy_acc", [base, p], imms=(1, 1))
        assert out.values == tuple(2 * v for v in base.values)

    def test_vrmpy(self):
        v = Vec(U8, (1, 2, 3, 4, 5, 6, 7, 8))
        out = run("vrmpy", [v], imms=(1, 1, 1, 1))
        assert out.values == (10, 26)
        assert out.elem.bits == 32

    def test_vmpyio_odd_halfwords(self):
        w = Vec(I32, (10, 100))
        h = Vec(I16, (1, -2, 3, -4))
        out = run("vmpyio", [w, h])
        assert out.values == (-20, -400)

    def test_vmpyie_treats_evens_unsigned(self):
        w = Vec(I32, (10,))
        h = Vec(I16, (-1, 7))  # -1 as u16 is 65535
        out = run("vmpyie", [w, h])
        assert out.values == (I32.wrap(10 * 65535),)


class TestShift:
    def test_vasl(self):
        assert run("vasl", [vec8(3)], imms=(2,)).values == (12,)

    def test_vasr_arithmetic(self):
        assert run("vasr", [Vec(I8, (-8,))], imms=(2,)).values == (-2,)

    def test_vlsr_logical(self):
        assert run("vlsr", [Vec(I8, (-8,))], imms=(2,)).values == (62,)

    def test_vasr_rnd(self):
        assert run("vasr_rnd", [Vec(I16, (7,))], imms=(2,)).values == (2,)
        assert run("vasr_rnd", [Vec(I16, (6,))], imms=(2,)).values == (2,)

    def test_vasrn_narrowing_order(self):
        hi = Vec(U16, (0x300, 0x400))
        lo = Vec(U16, (0x100, 0x200))
        out = run("vasrn", [hi, lo], imms=(4,))
        assert out.values == (0x10, 0x20, 0x30, 0x40)
        assert out.elem == U8

    def test_vasrn_rnd_sat_u(self):
        hi = Vec(I16, (-5, 10000))
        lo = Vec(I16, (100, 50))
        out = run("vasrn_rnd_sat_u", [hi, lo], imms=(4,))
        assert out.values == (6, 3, 0, 255)

    def test_vsat(self):
        hi = Vec(I16, (300, -4))
        lo = Vec(I16, (10, 20))
        out = run("vsat", [hi, lo])
        assert out.values == (10, 20, 255, 0)

    def test_vsat_i(self):
        hi = Vec(I16, (300, -300))
        lo = Vec(I16, (5, -5))
        out = run("vsat_i", [hi, lo])
        assert out.values == (5, -5, 127, -128)


class TestPermute:
    def test_vcombine_lo_hi(self):
        p = run("vcombine", [vec8(1, 2), vec8(3, 4)])
        assert p.values == (1, 2, 3, 4)
        assert run("lo", [p]).values == (1, 2)
        assert run("hi", [p]).values == (3, 4)

    def test_vshuffvdd_vdealvdd(self):
        p = VecPair(U8, (0, 2, 1, 3))
        assert run("vshuffvdd", [p]).values == (0, 1, 2, 3)
        assert run("vdealvdd", [VecPair(U8, (0, 1, 2, 3))]).values == (0, 2, 1, 3)

    def test_vpacke_truncates_in_order(self):
        hi = Vec(U16, (0x1FF,))
        lo = Vec(U16, (0x102,))
        out = run("vpacke", [hi, lo])
        assert out.values == (0x02, 0xFF)

    def test_vpacko_takes_high_half(self):
        hi = Vec(U16, (0x1FF,))
        lo = Vec(U16, (0x0302,))
        out = run("vpacko", [hi, lo])
        assert out.values == (0x03, 0x01)

    def test_vpackub_saturates(self):
        hi = Vec(I16, (-7,))
        lo = Vec(I16, (300,))
        out = run("vpackub", [hi, lo])
        assert out.values == (255, 0)

    def test_vshuffeb_interleaves(self):
        hi = Vec(U16, (1, 3))  # odd logical lanes
        lo = Vec(U16, (0, 2))  # even logical lanes
        out = run("vshuffeb", [hi, lo])
        assert out.values == (0, 1, 2, 3)

    def test_valign_window(self):
        a = vec8(0, 1, 2, 3)
        b = vec8(4, 5, 6, 7)
        out = run("valign", [a, b], imms=(2,))
        assert out.values == (2, 3, 4, 5)

    def test_vror(self):
        out = run("vror", [vec8(0, 1, 2, 3)], imms=(1,))
        assert out.values == (1, 2, 3, 0)

    def test_retype_preserves_bits(self):
        out = run("retype_i", [Vec(U16, (65535,))])
        assert out.elem == I16
        assert out.values == (-1,)
        back = run("retype_u", [out])
        assert back.values == (65535,)


@given(st.lists(st.integers(0, 255), min_size=4, max_size=4),
       st.lists(st.integers(0, 255), min_size=4, max_size=4))
def test_vmpa_equals_two_vmpy_sums(row0, row1):
    rows = VecPair(U8, tuple(row0 + row1))
    out = run("vmpa", [rows], imms=(3, 5))
    expect = tuple(a * 3 + b * 5 for a, b in zip(row0, row1))
    assert out.values == expect


@given(st.lists(st.integers(0, 255), min_size=8, max_size=16).filter(
    lambda v: len(v) % 4 == 0))
def test_vtmpy_interleaved_equals_logical_window(window):
    p = VecPair(U8, tuple(window))
    out = run("vtmpy", [p], imms=(1, 2))
    from repro.hvx.values import interleave

    logical = interleave(out).values
    n = len(window) // 2
    expect = tuple(
        I16.wrap(window[i] + 2 * window[i + 1] + window[i + 2])
        for i in range(n)
    )
    assert logical == expect
