"""Tests that every load-window realization reads exactly the window."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EvaluationError
from repro.hvx import interp
from repro.hvx.memory import load_pair, load_window, window_realizations
from repro.ir.interp import BufferView, Environment
from repro.types import U16, U8


def env(n=512, origin=256):
    return Environment(
        buffers={"in": BufferView(list(range(n)), U16, origin)}
    )


def expect(offset, lanes, stride=1):
    e = env()
    return e.buffer("in").read(offset, lanes, stride)


class TestWindowRealizations:
    def test_aligned_has_single_option(self):
        options = list(window_realizations("in", 0, 8, U8))
        assert len(options) == 1

    def test_unaligned_has_vmemu_and_valign(self):
        options = list(window_realizations("in", 3, 8, U8))
        assert len(options) == 2

    @given(st.integers(-64, 64), st.sampled_from([4, 8, 16]))
    def test_all_options_equivalent(self, offset, lanes):
        for impl in window_realizations("in", offset, lanes, U16):
            got = interp.evaluate(impl, env())
            assert got.values == expect(offset, lanes)


class TestLoadWindow:
    @given(st.integers(-32, 32), st.sampled_from([1, 2, 4]))
    def test_strided_window(self, offset, stride):
        impl = load_window("in", offset, 8, U16, stride)
        got = interp.evaluate(impl, env())
        assert got.values == expect(offset, 8, stride)

    def test_unsupported_stride(self):
        with pytest.raises(EvaluationError):
            load_window("in", 0, 8, U16, 3)


class TestLoadPair:
    @given(st.integers(-32, 32))
    def test_pair_window(self, offset):
        impl = load_pair("in", offset, 16, U16)
        got = interp.evaluate(impl, env())
        assert got.values == expect(offset, 16)

    @given(st.integers(-32, 32), st.sampled_from([2]))
    def test_strided_pair(self, offset, stride):
        impl = load_pair("in", offset, 16, U16, stride)
        got = interp.evaluate(impl, env())
        assert got.values == expect(offset, 16, stride)
