"""Cross-ISA differential testing: HVX vs Neon on the paper's workloads.

The same scheduled pipelines compile independently on both registered
targets — different vector widths, sketch grammars, swizzle grammars,
cost models and batched lowerings — and the selected machine programs
must agree lane-for-lane on shared valuation banks
(:mod:`repro.targets.differential`).  Nothing below the frontend is
shared between the two compilations, so this catches target-specific
miscompiles that same-target verification cannot.
"""

from __future__ import annotations

import pytest

import repro.workloads as workloads
from repro.errors import ReproError
from repro.ir import builder as B
from repro.pipeline import compile_pipeline
from repro.targets import nodes as N
from repro.targets.differential import (
    compare_compiled,
    compare_programs,
    compare_workload,
)
from repro.synthesis.valuation import BASE_STYLES
from repro.types import U8

#: the default cross-ISA set: pointwise, reduction and stencil coverage
WORKLOADS = ("add", "mul", "mean", "box_blur", "sobel", "gaussian3x3")


class TestTable1Workloads:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_lane_exact_across_targets(self, name):
        report = compare_workload(name)
        assert report.ok, "\n".join(
            f"{c.stage}[{c.index}]: {c.detail}" for c in report.failures
        )
        for comparison in report.comparisons:
            assert comparison.lanes > 0
            assert comparison.environments >= len(BASE_STYLES)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_neon_compile_is_verified_and_not_degraded(self, name):
        compiled = compile_pipeline(workloads.get(name).build(),
                                    target="neon")
        assert compiled.target == "neon"
        assert not compiled.degraded
        assert compiled.stages

    @pytest.mark.slow
    @pytest.mark.parametrize("name", workloads.names())
    def test_all_workloads_lane_exact(self, name):
        report = compare_workload(name)
        assert report.ok, "\n".join(
            f"{c.stage}[{c.index}]: {c.detail}" for c in report.failures
        )


class TestBatchedCoverageGate:
    """Neon oracle queries must run through the batched evaluator.

    A silent regression to the scalar fallback would keep every verdict
    correct but lose the evaluation engine the issue requires — so the
    gate is structural, not behavioral.
    """

    @pytest.mark.parametrize("name", ("box_blur", "mean"))
    def test_neon_queries_are_batched(self, name):
        compiled = compile_pipeline(workloads.get(name).build(),
                                    target="neon")
        stats = compiled.stats
        assert stats.total_batched_evals > 0
        assert stats.total_fallback_evals == 0, (
            f"{stats.total_fallback_evals} Neon oracle evaluations fell "
            f"back to the scalar interpreter"
        )

    def test_hvx_queries_stay_batched(self):
        compiled = compile_pipeline(workloads.get("box_blur").build())
        assert compiled.stats.total_batched_evals > 0
        assert compiled.stats.total_fallback_evals == 0


class TestDifferentialMechanics:
    def test_detects_a_planted_miscompile(self):
        # Same spec on both sides, but the "neon program" computes a
        # different function — the oracle must localize the divergence.
        spec = B.load("in", 0, 16, U8) + B.load("in", 1, 16, U8)
        loads = (N.HvxLoad("in", 0, 16, U8), N.HvxLoad("in", 1, 16, U8))
        right = N.HvxInstr("neon.vadd", loads)
        wrong = N.HvxInstr("neon.vsub", loads)
        equal, detail, _, _ = compare_programs(spec, right, spec, wrong)
        assert not equal
        assert "second program diverges from its spec" in detail

    def test_detects_a_cross_isa_lane_mismatch(self):
        # Both programs match their own specs, but the specs differ —
        # the prefix check must fire, naming the offending lane.
        spec_a = B.load("in", 0, 16, U8)
        spec_b = B.load("in", 1, 16, U8)
        prog_a = N.HvxLoad("in", 0, 16, U8)
        prog_b = N.HvxLoad("in", 1, 16, U8)
        equal, detail, lanes, _ = compare_programs(
            spec_a, prog_a, spec_b, prog_b
        )
        assert not equal
        assert "lane" in detail
        assert lanes == 16

    def test_stage_structure_mismatch_raises(self):
        a = compile_pipeline(workloads.get("add").build())
        b = compile_pipeline(workloads.get("mul").build(), target="neon")
        with pytest.raises(ReproError):
            compare_compiled(a, b)

    def test_unknown_target_rejected(self):
        with pytest.raises(ReproError):
            compare_workload("add", targets=("hvx", "vliw9000"))

    def test_report_summary_mentions_both_targets(self):
        report = compare_workload("mul")
        text = report.summary()
        assert "hvx" in text and "neon" in text and "OK" in text


class TestLanePrefixProperty:
    """The narrower target computes a prefix of the wider target's lanes."""

    def test_prefix_holds_for_a_stencil(self):
        from repro.synthesis.oracle import denote
        from repro.synthesis.valuation import environment_bank

        def blur(lanes):
            a = B.widen(B.load("in", 0, lanes, U8))
            b = B.widen(B.load("in", 1, lanes, U8))
            c = B.widen(B.load("in", 2, lanes, U8))
            return B.cast(U8, (a + b + c) * 85 >> 8)

        wide, narrow = blur(128), blur(16)
        for env in environment_bank(wide, n_random_extra=1):
            assert denote(wide, env)[:16] == denote(narrow, env)
