"""Unit tests for the sketch grammar's building blocks (stage 2 internals)."""

import pytest

from repro.errors import UnsupportedExpressionError
from repro.hvx import isa as H
from repro.ir import builder as B
from repro.synthesis import grammar
from repro.synthesis.lowering import Lowerer
from repro.synthesis.oracle import (
    LAYOUT_DEINTERLEAVED,
    LAYOUT_INORDER,
    Oracle,
)
from repro.types import I16, U16, U8, VectorType
from repro.uber import (
    Average,
    BroadcastScalar,
    LoadData,
    Minimum,
    Mux,
    Narrow,
    ShiftRight,
    VsMpyAdd,
    Widen,
)


def child_of(oracle=None):
    return Lowerer(oracle or Oracle())._child


def ld(offset=0, lanes=128, elem=U8, stride=1):
    return LoadData("in", offset, lanes, elem, stride)


def sketches_for(e):
    return list(grammar.sketches(e, child_of(), 128))


class TestSafeInstr:
    def test_valid(self):
        out = grammar.safe_instr("vadd", (H.HvxLoad("a", 0, 128, U8),
                                          H.HvxLoad("b", 0, 128, U8)))
        assert out is not None

    def test_ill_typed_returns_none(self):
        assert grammar.safe_instr("vadd", (H.HvxLoad("a", 0, 128, U8),
                                           H.HvxLoad("b", 0, 64, U16))) is None

    def test_none_arg_returns_none(self):
        assert grammar.safe_instr("vadd",
                                  (None, H.HvxLoad("b", 0, 128, U8))) is None


class TestLoadSketches:
    def test_vec_load_is_window(self):
        (sk,) = sketches_for(ld())
        from repro.synthesis.sketch import AbstractWindow

        assert isinstance(sk.expr, AbstractWindow)
        assert sk.layout == LAYOUT_INORDER

    def test_pair_load_is_pair_window(self):
        (sk,) = sketches_for(ld(elem=U16))
        from repro.synthesis.sketch import AbstractPairWindow

        assert isinstance(sk.expr, AbstractPairWindow)

    def test_unsupported_width_raises(self):
        with pytest.raises(UnsupportedExpressionError):
            sketches_for(ld(lanes=32))


class TestChainBuilder:
    def test_contiguous_triple_offers_vtmpy_first(self):
        e = VsMpyAdd((ld(-1), ld(0), ld(1)), (1, 2, 1), False, I16)
        ops = [n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)]
        assert "vtmpy" in ops

    def test_trailing_weight_must_be_one_for_vtmpy(self):
        e = VsMpyAdd((ld(-1), ld(0), ld(1)), (2, 4, 2), False, I16)
        first = sketches_for(e)[0]
        ops = [n.op for n in first.expr if isinstance(n, H.HvxInstr)]
        assert "vtmpy" not in ops

    def test_deinterleaved_layout_reported(self):
        e = VsMpyAdd((ld(-1), ld(0), ld(1)), (1, 2, 1), False, I16)
        layouts = {sk.layout for sk in sketches_for(e)}
        assert LAYOUT_DEINTERLEAVED in layouts

    def test_four_byte_dot_offers_vrmpy(self):
        e = VsMpyAdd(tuple(ld(k, lanes=32) for k in range(4)),
                     (1, 2, 3, 4), False,
                     VectorType(U8, 32).elem.widened().widened())
        # out elem i32 at 32 lanes = one vector
        from repro.types import I32

        e = VsMpyAdd(tuple(ld(k, lanes=32) for k in range(4)),
                     (1, 2, 3, 4), False, I32)
        ops = [n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)]
        assert "vrmpy" in ops

    def test_reads_in_any_order_are_sorted(self):
        e = VsMpyAdd((ld(1), ld(-1), ld(0)), (1, 1, 2), False, I16)
        ops = [n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)]
        assert "vtmpy" in ops  # sorted offsets expose the contiguous window

    def test_mixed_width_acc(self):
        e = VsMpyAdd((LoadData("acc", 0, 128, U16), ld()), (1, 1), False, U16)
        ops = [n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)]
        assert "vmpy_acc" in ops


class TestNarrowSketches:
    def test_fused_variants_proposed(self):
        e = Narrow(VsMpyAdd((ld(-1), ld(0), ld(1)), (1, 2, 1), False, U16),
                   U8, shift=4, round=True, saturate=False)
        ops = {n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)}
        assert "vasrn_rnd_sat_u" in ops  # proposed; oracle decides soundness
        assert "vasrn" in ops

    def test_shift_zero_offers_packs(self):
        e = Narrow(Widen(ld(), U16), U8, 0, False, True)
        ops = {n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)}
        assert {"vpackub", "vsat"} & ops


class TestOtherGenerators:
    def test_widen(self):
        ops = {n.op for sk in sketches_for(Widen(ld(), U16))
               for n in sk.expr if isinstance(n, H.HvxInstr)}
        assert "vzxt" in ops and "vmpy" in ops

    def test_minimum_layouts(self):
        e = Minimum(Widen(ld(0), U16), Widen(ld(1), U16))
        assert any(sk.layout == LAYOUT_INORDER for sk in sketches_for(e))

    def test_average(self):
        e = Average(ld(0), ld(1), round=True)
        ops = {n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)}
        assert "vavg_rnd" in ops

    def test_shift_right(self):
        e = ShiftRight(LoadData("in", 0, 128, U16), 3)
        ops = {n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)}
        assert "vasr" in ops

    def test_mux_vec(self):
        e = Mux("gt", ld(0), ld(1), ld(2), ld(3))
        ops = {n.op for sk in sketches_for(e) for n in sk.expr
               if isinstance(n, H.HvxInstr)}
        assert {"vcmp_gt", "vmux"} <= ops

    def test_broadcast(self):
        e = BroadcastScalar(B.const(5, U8), U8, 128)
        (sk,) = sketches_for(e)
        assert isinstance(sk.expr, H.HvxSplat)
