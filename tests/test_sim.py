"""Tests for the cycle simulator: packet scheduling, the roofline model,
and the functional executor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.hvx import isa as H
from repro.ir import builder as B
from repro.sim import (
    DEFAULT_MACHINE,
    Image,
    MachineConfig,
    initiation_interval,
    latency_report,
    resource_counts,
    schedule_packets,
)
from repro.sim.runner import load_bytes, traffic_bytes
from repro.types import U16, U8


def load(offset=0, lanes=128):
    return H.HvxLoad("in", offset, lanes, U8)


def chain(n):
    """n dependent vadds."""
    e = load(0)
    for i in range(n):
        e = H.HvxInstr("vadd", (e, load(128 * (i + 1))))
    return e


class TestInitiationInterval:
    def test_counts_per_resource(self):
        counts = resource_counts(chain(3))
        assert counts["alu"] == 3
        assert counts["load"] == 4

    def test_store_bytes_add_stores(self):
        counts = resource_counts(chain(1), store_bytes=128)
        assert counts["store"] == 1

    def test_ii_respects_caps(self):
        machine = MachineConfig(caps={"alu": 1, "load": 8}, slots=16)
        assert initiation_interval(chain(4), machine) == 4

    def test_ii_respects_total_slots(self):
        # 8 ALU ops at cap 8 still need 2 packets of 4 slots
        machine = MachineConfig(caps={"alu": 8, "load": 8}, slots=4)
        assert initiation_interval(chain(8), machine) >= 3

    def test_shared_subtrees_counted_once(self):
        c = chain(2)
        doubled = H.HvxInstr("vadd", (c, c))
        assert resource_counts(doubled)["alu"] == 3

    def test_splats_free(self):
        s = H.HvxSplat(B.const(1, U8), U8, 128)
        e = H.HvxInstr("vadd", (load(), s))
        assert "none" not in resource_counts(e)
        assert resource_counts(e)["alu"] == 1


class TestPacketScheduler:
    def test_dependent_chain_takes_cycles(self):
        sched = schedule_packets(chain(4))
        assert sched.cycles >= 5  # load + 4 dependent adds

    def test_all_instructions_scheduled(self):
        sched = schedule_packets(chain(4))
        assert sched.instructions == 9  # 5 loads + 4 adds

    def test_respects_unit_caps(self):
        sched = schedule_packets(chain(4))
        for packet in sched.packets:
            loads = [n for n in packet if isinstance(n, H.HvxLoad)]
            assert len(loads) <= DEFAULT_MACHINE.cap("load")
            assert len(packet) <= DEFAULT_MACHINE.slots

    def test_latency_report(self):
        rep = latency_report(chain(2))
        assert rep["instructions"] == 5
        assert rep["cycles"] >= 3


class TestTraffic:
    def test_load_bytes_dedup(self):
        e = H.HvxInstr("vadd", (load(0), load(0)))
        assert load_bytes(e) == 128

    def test_traffic_uses_footprint(self):
        # a 3-point stencil moves ~one vector of new data per iteration
        e = H.HvxInstr(
            "vadd", (H.HvxInstr("vadd", (load(-1), load(0))), load(1))
        )
        assert traffic_bytes(e) == 128
        assert load_bytes(e) == 3 * 128

    def test_traffic_sums_buffers(self):
        other = H.HvxLoad("other", 0, 128, U8)
        e = H.HvxInstr("vadd", (load(), other))
        assert traffic_bytes(e) == 256


class TestImage:
    def test_shape_and_halo(self):
        img = Image(U8, 128, 8)
        img.set(0, 0, 300)
        assert img.get(0, 0) == 44

    def test_fill_random_deterministic(self):
        a = Image(U8, 128, 4).fill_random(7)
        b = Image(U8, 128, 4).fill_random(7)
        assert a.pixels() == b.pixels()

    def test_width_guard(self):
        with pytest.raises(SimulationError):
            Image(U8, 4096, 4)

    def test_pixels_shape(self):
        img = Image(U8, 128, 4)
        px = img.pixels()
        assert len(px) == 4 and len(px[0]) == 128
