"""Tests for interval analysis — the semantic-reasoning substrate."""

from hypothesis import given, settings, strategies as st

from repro.ir import builder as B
from repro.ir import expr as E
from repro.ir.analysis import (
    Interval,
    bounds_of,
    is_provably_non_negative,
    provably_fits,
)
from repro.ir.interp import evaluate_vector
from repro.types import I16, I32, U16, U8

from conftest import env_with


def u8v(offset=0, lanes=4):
    return B.load("in", offset, lanes, U8)


class TestInterval:
    def test_contains(self):
        assert 3 in Interval(0, 5)
        assert 6 not in Interval(0, 5)

    def test_union(self):
        assert Interval(0, 3).union(Interval(2, 9)) == Interval(0, 9)

    def test_fits(self):
        assert Interval(0, 255).fits(U8)
        assert not Interval(0, 256).fits(U8)


class TestBounds:
    def test_load_full_range(self):
        assert bounds_of(u8v()) == Interval(0, 255)

    def test_const(self):
        assert bounds_of(B.const(42, U8)) == Interval(42, 42)

    def test_widening_sum(self):
        e = B.widen(u8v()) + B.widen(u8v(1)) * 2 + B.widen(u8v(2))
        assert bounds_of(e) == Interval(0, 255 * 4)

    def test_overflowing_sum_falls_back(self):
        e = u8v() + u8v(1)  # u8 + u8 can wrap
        assert bounds_of(e) == Interval(0, 255)

    def test_gaussian_narrow_is_provable(self):
        # The Figure 12 gaussian3x3 proof: (3-tap sum + 8) >> 4 fits u8.
        e = (B.widen(u8v()) + B.widen(u8v(1)) * 2 + B.widen(u8v(2)) + 8) >> 4
        assert provably_fits(e, U8)

    def test_clamp_bounds(self):
        e = B.clamp(B.widen(u8v()) * 4, 0, 255)
        assert bounds_of(e).fits(U8)

    def test_absd_bounds(self):
        e = B.absd(u8v(), u8v(1))
        assert bounds_of(e) == Interval(0, 255)

    def test_vmpyie_side_condition(self):
        # i16 view of (u16 >> 1) is provably non-negative — licenses vmpyie.
        load16 = B.load("in", 0, 4, U16)
        e = B.cast(I16, B.shr(load16, 1))
        assert is_provably_non_negative(e)

    def test_plain_i16_not_non_negative(self):
        assert not is_provably_non_negative(B.load("in", 0, 4, I16))

    def test_select_union(self):
        cond = B.lt(u8v(), u8v(1))
        e = B.select(cond, B.broadcast(3, 4, U8), B.broadcast(9, 4, U8))
        assert bounds_of(e) == Interval(3, 9)

    def test_shift_right_bounds(self):
        e = B.shr(B.widen(u8v()), 2)
        assert bounds_of(e) == Interval(0, 63)

    def test_sat_cast_bounds(self):
        e = B.sat_cast(U8, B.widen(u8v()) * 4)
        assert bounds_of(e).fits(U8)


@settings(max_examples=60)
@given(st.lists(st.integers(0, 255), min_size=16, max_size=16))
def test_bounds_are_sound(data):
    env = env_with(data=data, origin=4)
    exprs = [
        B.widen(u8v()) * 3 + B.widen(u8v(1)),
        (B.widen(u8v()) + 8) >> 4,
        B.absd(u8v(), u8v(1)),
        B.clamp(B.widen(u8v()), 10, 20),
        B.select(B.lt(u8v(), u8v(1)), u8v(2), u8v(3)),
    ]
    for e in exprs:
        iv = bounds_of(e)
        for lane in evaluate_vector(e, env):
            assert lane in iv
