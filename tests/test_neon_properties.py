"""Property-based tests for every ARM Neon intrinsic semantic.

Each registered ``neon.*`` instruction is checked against an independent
scalar reference written directly from the architecture manual's
pseudocode — separate code from the ``sem_fn`` implementations in
:mod:`repro.neon.semantics`, so a shared bug cannot cancel out.  Inputs
are drawn by hypothesis from the full element range with the wrap and
saturate boundary values (type min/max, -1, 0, 1) mixed in explicitly,
plus every legal shift immediate.

A completeness check at the bottom fails when a new ``neon.`` instruction
is registered without a property here.
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover - hypothesis ships in the dev env
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.hvx import isa as H
from repro.hvx.values import Vec, VecPair
from repro.neon import semantics  # noqa: F401 - registers the ISA
from repro.types import I8, I16, U8, U16, ScalarType

LANES = 8  # semantics are lanewise; a short vector exercises every path


# ---------------------------------------------------------------------------
# independent scalar reference
# ---------------------------------------------------------------------------


def ref_wrap(x: int, elem: ScalarType) -> int:
    m = x & ((1 << elem.bits) - 1)
    if elem.signed and m >= 1 << (elem.bits - 1):
        m -= 1 << elem.bits
    return m


def ref_sat(x: int, elem: ScalarType) -> int:
    if elem.signed:
        lo, hi = -(1 << (elem.bits - 1)), (1 << (elem.bits - 1)) - 1
    else:
        lo, hi = 0, (1 << elem.bits) - 1
    return min(max(x, lo), hi)


def run(op: str, args, imms=()):
    return H.lookup(op).sem_fn(tuple(args), tuple(imms))


def lane_strategy(elem: ScalarType):
    edges = [elem.min_value, elem.max_value, 0, 1]
    if elem.signed:
        edges.append(-1)
    return st.one_of(
        st.sampled_from(edges),
        st.integers(min_value=elem.min_value, max_value=elem.max_value),
    )


def vec_strategy(elem: ScalarType, lanes: int = LANES):
    return st.tuples(*([lane_strategy(elem)] * lanes))


ELEMS = (U8, I8, U16, I16)
NARROW_SRC = (U16, I16)  # pair element types narrows consume

COVERED: set[str] = set()


def covers(*ops: str):
    COVERED.update(ops)

    def deco(fn):
        return fn

    return deco


# ---------------------------------------------------------------------------
# widening moves
# ---------------------------------------------------------------------------


@covers("neon.vmovl_u", "neon.vmovl_s")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vmovl(elem, data):
    xs = data.draw(vec_strategy(elem))
    op = "neon.vmovl_s" if elem.signed else "neon.vmovl_u"
    out = run(op, [Vec(elem, xs)])
    assert isinstance(out, VecPair)
    assert out.elem.bits == elem.bits * 2
    assert out.elem.signed == elem.signed
    # extension preserves each lane's value, in order
    assert out.values == xs


# ---------------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------------


@covers("neon.vadd", "neon.vsub", "neon.vqadd", "neon.vqsub")
@settings(max_examples=120)
@given(
    st.sampled_from(ELEMS),
    st.sampled_from(["add", "sub"]),
    st.booleans(),
    st.data(),
)
def test_add_sub(elem, kind, saturating, data):
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    op = f"neon.v{'q' if saturating else ''}{kind}"
    out = run(op, [Vec(elem, xs), Vec(elem, ys)])
    conv = ref_sat if saturating else ref_wrap
    sign = 1 if kind == "add" else -1
    assert out.values == tuple(
        conv(x + sign * y, elem) for x, y in zip(xs, ys)
    )


@covers("neon.vmax", "neon.vmin")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_max_min(elem, data):
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    a, b = Vec(elem, xs), Vec(elem, ys)
    assert run("neon.vmax", [a, b]).values == tuple(
        max(x, y) for x, y in zip(xs, ys)
    )
    assert run("neon.vmin", [a, b]).values == tuple(
        min(x, y) for x, y in zip(xs, ys)
    )


@covers("neon.vhadd", "neon.vrhadd")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_halving_adds(elem, data):
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    a, b = Vec(elem, xs), Vec(elem, ys)
    # floor((x+y)/2) never overflows the element type — the intermediate
    # sum is computed at full precision (VHADD's defining property)
    assert run("neon.vhadd", [a, b]).values == tuple(
        (x + y) // 2 for x, y in zip(xs, ys)
    )
    assert run("neon.vrhadd", [a, b]).values == tuple(
        (x + y + 1) // 2 for x, y in zip(xs, ys)
    )


@covers("neon.vabd")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vabd(elem, data):
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    out = run("neon.vabd", [Vec(elem, xs), Vec(elem, ys)])
    assert not out.elem.signed
    assert out.values == tuple(abs(x - y) for x, y in zip(xs, ys))


@covers("neon.vabal")
@settings(max_examples=60)
@given(st.sampled_from((U8, I8)), st.data())
def test_vabal(elem, data):
    acc_elem = ScalarType(elem.bits * 2, False)
    accs = data.draw(vec_strategy(acc_elem))
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    out = run("neon.vabal",
              [VecPair(acc_elem, accs), Vec(elem, xs), Vec(elem, ys)])
    assert out.values == tuple(
        ref_wrap(c + abs(x - y), acc_elem)
        for c, x, y in zip(accs, xs, ys)
    )


@covers("neon.vaddw")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vaddw(elem, data):
    acc_elem = ScalarType(elem.bits * 2, elem.signed)
    accs = data.draw(vec_strategy(acc_elem))
    xs = data.draw(vec_strategy(elem))
    out = run("neon.vaddw", [VecPair(acc_elem, accs), Vec(elem, xs)])
    assert out.values == tuple(
        ref_wrap(c + x, acc_elem) for c, x in zip(accs, xs)
    )


# ---------------------------------------------------------------------------
# multiplies
# ---------------------------------------------------------------------------


@covers("neon.vmull")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vmull(elem, data):
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    out = run("neon.vmull", [Vec(elem, xs), Vec(elem, ys)])
    assert out.elem.bits == elem.bits * 2
    # every full product fits the widened type, even min*min
    assert out.values == tuple(x * y for x, y in zip(xs, ys))


@covers("neon.vmlal")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vmlal(elem, data):
    acc_elem = ScalarType(elem.bits * 2, elem.signed)
    accs = data.draw(vec_strategy(acc_elem))
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    out = run("neon.vmlal",
              [VecPair(acc_elem, accs), Vec(elem, xs), Vec(elem, ys)])
    assert out.values == tuple(
        ref_wrap(c + x * y, acc_elem) for c, x, y in zip(accs, xs, ys)
    )


@covers("neon.vmul", "neon.vmla")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vmul_vmla(elem, data):
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    accs = data.draw(vec_strategy(elem))
    assert run("neon.vmul", [Vec(elem, xs), Vec(elem, ys)]).values == tuple(
        ref_wrap(x * y, elem) for x, y in zip(xs, ys)
    )
    out = run("neon.vmla",
              [Vec(elem, accs), Vec(elem, xs), Vec(elem, ys)])
    assert out.values == tuple(
        ref_wrap(c + x * y, elem) for c, x, y in zip(accs, xs, ys)
    )


# ---------------------------------------------------------------------------
# shifts
# ---------------------------------------------------------------------------


@covers("neon.vshl_n", "neon.vshr_n", "neon.vrshr_n")
@settings(max_examples=120)
@given(st.sampled_from(ELEMS), st.data())
def test_shifts(elem, data):
    xs = data.draw(vec_strategy(elem))
    n = data.draw(st.integers(min_value=0, max_value=elem.bits - 1))
    v = Vec(elem, xs)
    assert run("neon.vshl_n", [v], [n]).values == tuple(
        ref_wrap(x << n, elem) for x in xs
    )
    assert run("neon.vshr_n", [v], [n]).values == tuple(
        x >> n for x in xs  # arithmetic shift of in-range x stays in range
    )
    bias = (1 << (n - 1)) if n else 0
    assert run("neon.vrshr_n", [v], [n]).values == tuple(
        ref_wrap((x + bias) >> n, elem) for x in xs
    )


# ---------------------------------------------------------------------------
# narrows
# ---------------------------------------------------------------------------

#: op -> (rounding, saturating, output signedness: None = inherit, shifted)
NARROWS = {
    "neon.vmovn": (False, False, None, False),
    "neon.vqmovn": (False, True, True, False),
    "neon.vqmovun": (False, True, False, False),
    "neon.vshrn_n": (False, False, None, True),
    "neon.vrshrn_n": (True, False, None, True),
    "neon.vqrshrun_n": (True, True, False, True),
    "neon.vqrshrn_n": (True, True, True, True),
}


@covers(*NARROWS)
@settings(max_examples=150)
@given(st.sampled_from(sorted(NARROWS)), st.sampled_from(NARROW_SRC),
       st.data())
def test_narrows(op, src_elem, data):
    round_, saturate, signed_out, shifted = NARROWS[op]
    xs = data.draw(vec_strategy(src_elem))
    n = data.draw(st.integers(min_value=0, max_value=src_elem.bits - 1)) \
        if shifted else 0
    imms = (n,) if shifted else ()
    out = run(op, [VecPair(src_elem, xs)], imms)
    signed = src_elem.signed if signed_out is None else signed_out
    out_elem = ScalarType(src_elem.bits // 2, signed)
    assert out.elem == out_elem
    want = []
    for x in xs:
        if round_ and n:
            x += 1 << (n - 1)
        x >>= n
        want.append(ref_sat(x, out_elem) if saturate
                    else ref_wrap(x, out_elem))
    assert out.values == tuple(want)


# ---------------------------------------------------------------------------
# permutes
# ---------------------------------------------------------------------------


@covers("neon.vext")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vext(elem, data):
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    n = data.draw(st.integers(min_value=0, max_value=LANES - 1))
    out = run("neon.vext", [Vec(elem, xs), Vec(elem, ys)], [n])
    assert out.values == (xs + ys)[n:n + LANES]


@covers("neon.vpair")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vpair(elem, data):
    xs = data.draw(vec_strategy(elem))
    ys = data.draw(vec_strategy(elem))
    out = run("neon.vpair", [Vec(elem, xs), Vec(elem, ys)])
    assert isinstance(out, VecPair)
    assert out.values == xs + ys


@covers("neon.vuzp", "neon.vzip")
@settings(max_examples=60)
@given(st.sampled_from(ELEMS), st.data())
def test_vuzp_vzip(elem, data):
    xs = data.draw(vec_strategy(elem, lanes=2 * LANES))
    p = VecPair(elem, xs)
    assert run("neon.vuzp", [p]).values == xs[0::2] + xs[1::2]
    lo, hi = xs[:LANES], xs[LANES:]
    want = tuple(v for ab in zip(lo, hi) for v in ab)
    assert run("neon.vzip", [p]).values == want
    # the two permutes are mutual inverses
    assert run("neon.vzip", [run("neon.vuzp", [p])]).values == xs


# ---------------------------------------------------------------------------
# completeness
# ---------------------------------------------------------------------------


def test_every_neon_instruction_has_a_property():
    registered = {
        name for name in H.all_instructions() if name.startswith("neon.")
    }
    missing = registered - COVERED
    assert not missing, (
        f"neon instructions without a property test: {sorted(missing)}"
    )
