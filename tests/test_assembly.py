"""Tests for the register-allocating assembly emitter."""

import pytest

import repro.workloads  # noqa: F401
from repro.hvx import isa as H
from repro.hvx.assembly import emit, to_assembly
from repro.ir import builder as B
from repro.pipeline import compile_pipeline
from repro.synthesis import select_instructions
from repro.types import U16, U8
from repro.workloads.base import get


def load(offset=0, lanes=128):
    return H.HvxLoad("in", offset, lanes, U8)


class TestEmit:
    def test_simple_load(self):
        asm = emit(load())
        assert len(asm.instructions) == 1
        assert asm.instructions[0].mnemonic == "vmem"
        assert asm.result == "v0"

    def test_unaligned_marked(self):
        asm = emit(load(3))
        assert asm.instructions[0].mnemonic == "vmemu"

    def test_dag_sharing_emits_once(self):
        shared = H.HvxInstr("vadd", (load(0), load(128)))
        program = H.HvxInstr("vadd", (shared, shared))
        asm = emit(program)
        mnemonics = [i.mnemonic for i in asm.instructions]
        assert mnemonics.count("vadd") == 2  # shared + outer, not three

    def test_pair_registers_named_as_pairs(self):
        z = H.HvxInstr("vzxt", (load(),))
        asm = emit(z)
        assert ":" in asm.result

    def test_lo_hi_are_free_aliases(self):
        z = H.HvxInstr("vzxt", (load(),))
        program = H.HvxInstr("vadd", (H.HvxInstr("lo", (z,)),
                                      H.HvxInstr("hi", (z,))))
        asm = emit(program)
        mnemonics = [i.mnemonic for i in asm.instructions]
        assert "lo" not in mnemonics and "hi" not in mnemonics
        # the vadd consumes the two halves of the vzxt pair
        final = asm.instructions[-1]
        assert final.mnemonic == "vadd"
        assert set(final.operands) == {"v0", "v1"} or len(final.operands) == 2

    def test_retype_is_free(self):
        r = H.HvxInstr("retype_i", (load(),))
        program = H.HvxInstr("vasr", (r,), (2,))
        asm = emit(program)
        assert [i.mnemonic for i in asm.instructions] == ["vmem", "vasr"]

    def test_registers_are_reused(self):
        # a long dependent chain should not grow the register file
        e = load(0)
        for k in range(1, 10):
            e = H.HvxInstr("vadd", (e, load(k * 128)))
        asm = emit(e)
        assert asm.max_registers <= 4

    def test_splat_renders_scalar(self):
        s = H.HvxSplat(B.const(7, U8), U8, 128)
        asm = emit(H.HvxInstr("vadd", (load(), s)))
        assert any("vsplat" == i.mnemonic for i in asm.instructions)

    def test_render_contains_summary(self):
        text = to_assembly(load())
        assert "// result in" in text


class TestRealPrograms:
    @pytest.mark.parametrize("name", ["sobel", "gaussian3x3", "average_pool"])
    def test_fits_hvx_register_file(self, name):
        wl = get(name)
        compiled = compile_pipeline(wl.build(), backend="rake")
        for cs in compiled.stages:
            for ce in cs.exprs:
                asm = emit(ce.program)
                assert asm.max_registers <= 32, (
                    f"{name}/{cs.name} needs {asm.max_registers} registers"
                )
                assert asm.instructions

    def test_every_operand_defined_before_use(self):
        e = B.cast(U8, (B.widen(B.load("input", -1, 128, U8))
                        + B.widen(B.load("input", 0, 128, U8)) * 2
                        + B.widen(B.load("input", 1, 128, U8)) + 8) >> 4)
        program = select_instructions(e).program
        asm = emit(program)
        defined: set[str] = set()
        import re

        def regs_in(text):
            # v3:2 defines/uses v2 and v3
            for m in re.finditer(r"v(\d+):(\d+)|v(\d+)", text):
                if m.group(3) is not None:
                    yield int(m.group(3))
                else:
                    yield int(m.group(1))
                    yield int(m.group(2))

        for instr in asm.instructions:
            for op in instr.operands:
                for r in regs_in(op):
                    assert r in defined, (
                        f"{instr.render()} uses undefined v{r}"
                    )
            for r in regs_in(instr.dest.split(".")[0]):
                defined.add(r)
