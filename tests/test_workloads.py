"""Tests over the 21-benchmark suite.

Baseline compilation (cheap) runs for every benchmark; full Rake synthesis
runs for a representative subset here and for the complete suite in the
benchmark harness.
"""

import pytest

import repro.workloads  # noqa: F401
from repro.pipeline import compile_pipeline
from repro.sim import measure
from repro.workloads.base import all_workloads, get, names

PAPER_SUITE = {
    "sobel", "dilate3x3", "box_blur", "median3x3", "gaussian3x3",
    "gaussian5x5", "gaussian7x7", "conv3x3a16", "conv3x3a32", "camera_pipe",
    "matmul", "add", "mul", "mean", "l2norm", "softmax", "average_pool",
    "max_pool", "fully_connected", "conv_nn", "depthwise_conv",
}


def test_all_twenty_one_registered():
    assert set(names()) == PAPER_SUITE
    assert len(all_workloads()) == 21


def test_metadata_complete():
    for wl in all_workloads():
        assert wl.category in ("image", "ml", "camera", "linear-algebra")
        assert wl.paper_band in ("improved", "tied", "regressed")
        assert wl.inputs, wl.name


@pytest.mark.parametrize("name", sorted(PAPER_SUITE))
def test_baseline_compiles_and_verifies(name):
    wl = get(name)
    compiled = compile_pipeline(wl.build(), backend="baseline", verify=True)
    assert compiled.stages
    assert all(ce.program is not None
               for cs in compiled.stages for ce in cs.exprs)


RAKE_SUBSET = ["sobel", "gaussian3x3", "average_pool", "l2norm", "add",
               "conv3x3a16", "mean", "camera_pipe"]


@pytest.mark.parametrize("name", RAKE_SUBSET)
def test_rake_compiles_and_verifies(name):
    wl = get(name)
    compiled = compile_pipeline(wl.build(), backend="rake", verify=True)
    assert compiled.optimized_exprs >= 1


@pytest.mark.parametrize("name", ["sobel", "gaussian3x3", "average_pool",
                                  "conv3x3a16"])
def test_improved_benchmarks_beat_baseline(name):
    wl = get(name)
    rk = compile_pipeline(wl.build(), backend="rake")
    bl = compile_pipeline(wl.build(), backend="baseline")
    assert measure(rk, wl.width, wl.height).total < \
        measure(bl, wl.width, wl.height).total


@pytest.mark.parametrize("name", ["dilate3x3", "median3x3", "max_pool"])
def test_minmax_benchmarks_tie(name):
    wl = get(name)
    rk = compile_pipeline(wl.build(), backend="rake")
    bl = compile_pipeline(wl.build(), backend="baseline")
    assert measure(rk, wl.width, wl.height).total == \
        measure(bl, wl.width, wl.height).total
