"""Property-based differential testing of the full synthesis pipeline.

A seeded :mod:`random` generator (no new dependencies) produces well-typed
IR expressions over the shapes Rake's grammars target — widening u8 loads
combined with adds, constant multiplies, shifts and narrowing casts.  Each
expression runs through lift + lower, and the selected machine program
(and the lifted uber expression) must denote exactly the spec's lanes on
every environment in the oracle's valuation bank.  The sweep runs once
per registered target, at that target's native vector width.

Expressions the synthesizer declines (``SynthesisError`` et al.) are
counted but not failures: the property under test is soundness — whatever
Rake *does* emit is semantically equal to its spec — with a floor on how
many expressions must succeed so the sweep cannot silently degenerate.
"""

import random

import pytest

from repro.errors import ReproError
from repro.ir import builder as B
from repro.ir import printer as ir_printer
from repro.synthesis import RakeSelector
from repro.synthesis.oracle import denote
from repro.synthesis.valuation import environment_bank
from repro.types import U8

LANES = 128  # native u8 vector width at 128 vector bytes
W = 512  # row stride for vertical stencils

#: default-config sweep size (the slow marker runs a bigger one)
DEFAULT_SWEEP = 220
DEFAULT_MIN_SUCCESS = 120

TARGETS = ("hvx", "neon")


def random_spec(rng: random.Random, lanes: int = LANES):
    """A random widening stencil, the expression family Rake targets.

    Shapes mirror what the frontend emits for the paper's image kernels:
    a weighted sum of (optionally strided) widened u8 loads, wrapped in
    one of the narrowing idioms (truncate, round-and-truncate, saturate)
    or left at u16.
    """
    n_taps = rng.randint(1, 3)
    orientation = rng.choice(("h", "v"))
    base = rng.randint(-2, 2)
    weights = [rng.choice((1, 1, 2, 3, 4)) for _ in range(n_taps)]
    acc = None
    for k, w in enumerate(weights):
        offset = base + (k if orientation == "h" else k * W)
        term = B.widen(B.load("in", offset, lanes, U8))
        if w > 1:
            term = term * w
        acc = term if acc is None else acc + term

    wrap = rng.choice(("none", "narrow", "round", "sat"))
    if wrap == "none":
        return acc
    total = sum(weights) * 255
    shift = max(1, total.bit_length() - 8)
    if wrap == "narrow":
        return B.cast(U8, acc >> shift)
    if wrap == "round":
        return B.cast(U8, (acc + (1 << (shift - 1))) >> shift)
    return B.sat_cast(U8, acc >> max(1, shift - 1))


def _run_sweep(seed: int, count: int, min_success: int,
               target: str = "hvx") -> None:
    rng = random.Random(seed)
    # One oracle: verdicts memoize across specs.
    selector = RakeSelector(target=target)
    lanes = selector.target.lanes  # u8 lanes at native width
    succeeded = 0
    for _ in range(count):
        spec = random_spec(rng, lanes)
        try:
            result = selector.select(spec)
        except ReproError:
            continue
        succeeded += 1
        for env in selector.oracle.bank_for(spec):
            want = denote(spec, env)
            assert denote(result.program, env) == want, (
                f"{target} program diverges from spec "
                f"{ir_printer.to_string(spec)}"
            )
            assert denote(result.lifted, env) == want, (
                f"lifted form diverges from spec "
                f"{ir_printer.to_string(spec)}"
            )
    assert succeeded >= min_success, (
        f"only {succeeded}/{count} random expressions synthesized on "
        f"{target}; the sweep no longer exercises the pipeline"
    )


class TestGenerator:
    def test_deterministic(self):
        a = [ir_printer.to_string(random_spec(random.Random(11)))
             for _ in range(20)]
        b = [ir_printer.to_string(random_spec(random.Random(11)))
             for _ in range(20)]
        assert a == b

    def test_specs_are_well_typed(self):
        # Every generated spec must interpret cleanly on its own bank —
        # a generator bug would otherwise masquerade as a synthesis skip.
        rng = random.Random(5)
        for _ in range(50):
            spec = random_spec(rng)
            env = environment_bank(spec, n_random_extra=0)[0]
            lanes = denote(spec, env)
            assert len(lanes) == LANES


class TestDifferential:
    @pytest.mark.parametrize("target", TARGETS)
    def test_default_sweep(self, target):
        _run_sweep(seed=2022, count=DEFAULT_SWEEP,
                   min_success=DEFAULT_MIN_SUCCESS, target=target)

    @pytest.mark.slow
    @pytest.mark.parametrize("target", TARGETS)
    def test_deep_sweep(self, target):
        _run_sweep(seed=2023, count=1000, min_success=500, target=target)
