"""Unit + property tests for HVX register values and lane shuffles."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EvaluationError
from repro.hvx.values import (
    PredVec,
    Vec,
    VecPair,
    combine,
    deinterleave,
    interleave,
    logical_lanes,
)
from repro.types import I16, U8


class TestVec:
    def test_wraps_on_construction(self):
        v = Vec(U8, (300, -1))
        assert v.values == (44, 255)

    def test_indexing(self):
        v = Vec(U8, (1, 2, 3))
        assert v[1] == 2
        assert len(v) == 3


class TestVecPair:
    def test_lo_hi(self):
        p = VecPair(U8, tuple(range(8)))
        assert p.lo.values == (0, 1, 2, 3)
        assert p.hi.values == (4, 5, 6, 7)

    def test_odd_lanes_rejected(self):
        with pytest.raises(EvaluationError):
            VecPair(U8, (1, 2, 3))


def test_combine():
    p = combine(Vec(U8, (1, 2)), Vec(U8, (3, 4)))
    assert p.values == (1, 2, 3, 4)


def test_combine_mismatch():
    with pytest.raises(EvaluationError):
        combine(Vec(U8, (1, 2)), Vec(I16, (3, 4)))


def test_interleave():
    p = VecPair(U8, (0, 2, 4, 6, 1, 3, 5, 7))
    assert interleave(p).values == tuple(range(8))


def test_deinterleave():
    p = VecPair(U8, tuple(range(8)))
    assert deinterleave(p).values == (0, 2, 4, 6, 1, 3, 5, 7)


def test_logical_lanes_of_deinterleaved():
    p = VecPair(U8, (0, 2, 4, 6, 1, 3, 5, 7))
    assert logical_lanes(p, deinterleaved=True) == tuple(range(8))


def test_predvec_booleanizes():
    q = PredVec((0, 3, -1))
    assert q.values == (False, True, True)


@given(st.lists(st.integers(0, 255), min_size=2, max_size=64).filter(
    lambda v: len(v) % 2 == 0))
def test_interleave_deinterleave_roundtrip(vals):
    p = VecPair(U8, tuple(vals))
    assert interleave(deinterleave(p)) == p
    assert deinterleave(interleave(p)) == p
