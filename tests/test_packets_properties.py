"""Property tests for the VLIW packet scheduler."""

from hypothesis import given, settings, strategies as st

from repro.hvx import isa as H
from repro.sim import DEFAULT_MACHINE, initiation_interval, schedule_packets
from repro.types import U8


@st.composite
def programs(draw):
    """Random add/mul DAGs over a handful of loads."""
    loads = [H.HvxLoad("in", 128 * k, 128, U8) for k in range(4)]
    nodes = list(loads)
    for _ in range(draw(st.integers(1, 8))):
        op = draw(st.sampled_from(["vadd", "vsub", "vmax", "vmin"]))
        a = draw(st.sampled_from(nodes))
        b = draw(st.sampled_from(nodes))
        made = H.HvxInstr(op, (a, b))
        nodes.append(made)
    return nodes[-1]


@settings(max_examples=40, deadline=None)
@given(programs())
def test_every_instruction_scheduled_once(program):
    sched = schedule_packets(program)
    scheduled = [n for packet in sched.packets for n in packet]
    assert len(scheduled) == len(set(scheduled))
    expected = {
        n for n in program
        if isinstance(n, (H.HvxLoad, H.HvxInstr))
        and not (isinstance(n, H.HvxInstr)
                 and n.descriptor.resource == "none")
    }
    assert set(scheduled) == expected


@settings(max_examples=40, deadline=None)
@given(programs())
def test_cycles_at_least_initiation_interval(program):
    sched = schedule_packets(program)
    assert sched.cycles >= initiation_interval(program)


@settings(max_examples=40, deadline=None)
@given(programs())
def test_packets_respect_caps(program):
    sched = schedule_packets(program)
    for packet in sched.packets:
        assert len(packet) <= DEFAULT_MACHINE.slots
        by_resource: dict = {}
        for node in packet:
            resource = "load" if isinstance(node, H.HvxLoad) \
                else node.descriptor.resource
            by_resource[resource] = by_resource.get(resource, 0) + 1
        for resource, count in by_resource.items():
            assert count <= DEFAULT_MACHINE.cap(resource)


@settings(max_examples=40, deadline=None)
@given(programs())
def test_dependencies_respected(program):
    sched = schedule_packets(program)
    position = {}
    for cycle, packet in enumerate(sched.packets):
        for node in packet:
            position[node] = cycle
    for cycle, packet in enumerate(sched.packets):
        for node in packet:
            for child in getattr(node, "children", ()):
                if child in position:
                    # every modeled op has latency >= 1, so a consumer
                    # must sit in a strictly later packet than its producer
                    assert position[child] < cycle
