"""The telemetry corpus: record schema, segment store, aggregation.

The store reuses the verdict store's CRC-stamped JSONL contract, so the
tests mirror that suite's shape: roundtrip, torn/corrupt lines, multi-
segment merge, quarantine + atomic compaction — plus the schema gate
(records from an unknown future schema are skipped, not fatal) and the
aggregation layer the ``repro perf`` commands sit on.
"""

import json
import os

from repro.synthesis.engine import decode_record, encode_record
from repro.telemetry import (
    TelemetryStore,
    build_record,
    corpus_geomean,
    emit,
    filter_records,
    is_record,
    metric_value,
    read_store,
    result_envelope,
    segment_files,
    summarize,
    summarize_groups,
    write_result_json,
)
from repro.telemetry.record import SCHEMA_VERSION
from repro.synthesis.stats import SynthesisStats


def make_record(workload="mul", target="hvx", wall_s=1.0, **kw):
    return build_record(source="test", workload=workload, target=target,
                        wall_s=wall_s, **kw)


class TestRecord:
    def test_build_record_shape(self):
        stats = SynthesisStats()
        stats.stages["sketching"].queries = 7
        rec = make_record(stats=stats, degraded=True, queue_wait_s=0.5,
                          knobs={"jobs": 2}, extra={"phase": "cold"})
        assert rec["schema"] == SCHEMA_VERSION
        assert len(rec["id"]) == 12
        assert rec["workload"] == "mul" and rec["target"] == "hvx"
        assert rec["totals"]["queries"] == 7
        assert rec["degraded"] is True
        assert rec["queue_wait_s"] == 0.5
        assert rec["knobs"] == {"jobs": 2}
        assert rec["extra"] == {"phase": "cold"}
        assert rec["stage_time_s"]["sketching"] >= 0.0

    def test_is_record_gates_schema_and_fields(self):
        assert is_record(make_record())
        assert not is_record({**make_record(), "schema": SCHEMA_VERSION + 1})
        assert not is_record({**make_record(), "workload": 3})
        assert not is_record({**make_record(), "wall_s": "fast"})
        assert not is_record("nope")
        assert not is_record({})

    def test_record_is_json_and_crc_roundtrippable(self):
        rec = make_record(stats=SynthesisStats())
        assert decode_record(encode_record(rec)) == rec


class TestStore:
    def test_emit_and_read_roundtrip(self, tmp_path):
        store = TelemetryStore(tmp_path)
        rid = emit(store, make_record())
        assert rid is not None and len(rid) == 12
        report = read_store(tmp_path)
        assert report.segments == 1
        assert report.corrupt_lines == 0
        assert [r["id"] for r in report.records] == [rid]

    def test_append_batches_until_flush_every(self, tmp_path):
        store = TelemetryStore(tmp_path)
        for _ in range(store.FLUSH_EVERY - 1):
            store.append(make_record())
        assert not segment_files(tmp_path)  # still buffered
        store.append(make_record())  # hits FLUSH_EVERY -> auto-flush
        assert len(segment_files(tmp_path)) == 1
        assert len(read_store(tmp_path).records) == store.FLUSH_EVERY

    def test_multi_segment_merge_sorted_by_ts(self, tmp_path):
        for i in range(3):
            store = TelemetryStore(tmp_path)
            rec = make_record(workload=f"wl{i}")
            rec["ts"] = float(10 - i)  # reverse chronological insertion
            emit(store, rec)
        assert len(segment_files(tmp_path)) == 3
        report = read_store(tmp_path)
        assert [r["workload"] for r in report.records] == [
            "wl2", "wl1", "wl0"]  # ts order, not segment order

    def test_corrupt_line_quarantined_and_compacted(self, tmp_path):
        store = TelemetryStore(tmp_path)
        good = make_record()
        emit(store, good)
        with open(store.segment, "a") as fh:
            fh.write("garbage not a crc-stamped line\n")
        emit(store, make_record(workload="add"))

        report = read_store(tmp_path, repair=True)
        assert report.corrupt_lines == 1
        assert len(report.records) == 2  # both good records survive
        assert len(report.quarantined) == 1
        assert report.quarantined[0].exists()
        # compacted segment is clean on the second read
        again = read_store(tmp_path)
        assert again.corrupt_lines == 0
        assert len(again.records) == 2

    def test_repair_false_leaves_segment_untouched(self, tmp_path):
        store = TelemetryStore(tmp_path)
        emit(store, make_record())
        with open(store.segment, "a") as fh:
            fh.write("torn\n")
        before = store.segment.read_bytes()
        report = read_store(tmp_path, repair=False)
        assert report.corrupt_lines == 1
        assert not report.quarantined
        assert store.segment.read_bytes() == before

    def test_unknown_schema_skipped_but_kept_on_disk(self, tmp_path):
        store = TelemetryStore(tmp_path)
        emit(store, make_record())
        future = {**make_record(), "schema": SCHEMA_VERSION + 7}
        with open(store.segment, "a") as fh:
            fh.write(encode_record(future) + "\n")
        fh_corrupt = open(store.segment, "a")
        fh_corrupt.write("broken\n")
        fh_corrupt.close()

        report = read_store(tmp_path, repair=True)
        assert report.skipped_records == 1
        assert len(report.records) == 1
        # compaction preserved the future-schema record for newer readers
        survivors = [decode_record(line)
                     for line in store.segment.read_text().splitlines()]
        assert any(r["schema"] == SCHEMA_VERSION + 7 for r in survivors)

    def test_unwritable_directory_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        store = TelemetryStore(blocker / "store")  # parent is a file
        assert emit(store, make_record()) is not None  # id still returned
        store.flush()
        assert store.write_errors >= 1
        assert read_store(blocker / "store").records == []

    def test_missing_directory_reads_empty(self, tmp_path):
        report = read_store(tmp_path / "nope")
        assert report.records == [] and report.segments == 0

    def test_unencodable_record_returns_none(self, tmp_path):
        store = TelemetryStore(tmp_path)
        assert store.append({"schema": 1, "oops": object()}) is None
        assert store.appended == 0

    def test_emit_through_none_store_is_noop(self):
        assert emit(None, make_record()) is None


class TestAggregation:
    def test_metric_value_dotted_paths(self):
        rec = make_record(stats=SynthesisStats())
        rec["totals"]["queries"] = 42
        assert metric_value(rec, "wall_s") == 1.0
        assert metric_value(rec, "totals.queries") == 42
        assert metric_value(rec, "totals.missing") is None
        assert metric_value(rec, "degraded") is None  # bool is not a metric
        assert metric_value(rec, "workload") is None

    def test_filter_records(self):
        recs = [make_record(workload="mul"), make_record(workload="add"),
                make_record(workload="mul", target="neon")]
        assert len(filter_records(recs, workload="mul")) == 2
        assert len(filter_records(recs, workload="mul", target="neon")) == 1
        assert len(filter_records(recs, source="test")) == 3
        assert len(filter_records(recs, source="cli")) == 0

    def test_summarize_nearest_rank(self):
        recs = [make_record(wall_s=v) for v in (3.0, 1.0, 2.0)]
        stats = summarize(recs, "wall_s")
        assert stats["n"] == 3
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["p50"] == 2.0
        assert summarize([], "wall_s") is None

    def test_summarize_groups_and_geomean(self):
        recs = ([make_record(workload="mul", wall_s=2.0)] * 2
                + [make_record(workload="add", wall_s=8.0)] * 2)
        rows = summarize_groups(recs, "wall_s")
        assert [r["workload"] for r in rows] == ["add", "mul"]
        assert corpus_geomean(rows) == 4.0  # sqrt(8 * 2)


class TestResultEnvelope:
    def test_envelope_stamps_provenance(self):
        doc = result_envelope("bench_x", {"rows": [1, 2]})
        assert doc["result_schema"] == 1
        assert doc["bench"] == "bench_x"
        assert doc["rows"] == [1, 2]
        assert "rev" in doc and "generated_utc" in doc

    def test_write_result_json_is_atomic_and_parseable(self, tmp_path):
        out = tmp_path / "deep" / "r.json"
        write_result_json(out, "bench_y", {"ok": True})
        loaded = json.loads(out.read_text())
        assert loaded["bench"] == "bench_y" and loaded["ok"] is True
        assert not [p for p in os.listdir(out.parent)
                    if p != out.name]  # no tmp litter
