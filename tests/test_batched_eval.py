"""Differential tests for the batched NumPy denotation engine.

The contract under test: for every expression the plan compiler accepts,
``denote_bank`` over the whole valuation bank is *bit-identical* to the
scalar ``denote`` per environment — including which ``EvaluationError``
cases refute (raise) rather than crash — and an oracle with the batched
path enabled produces the same verdicts, the same counterexample indices,
the same selected programs and the same verdict-cache keys as the scalar
oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.workloads  # noqa: F401 - populate the registry
from repro.errors import EvaluationError
from repro.eval import HAVE_NUMPY, BatchedEvaluator
from repro.eval import plan as batch_plan
from repro.hvx import isa as H
from repro.ir import expr as E
from repro.synthesis import valuation
from repro.synthesis.oracle import (
    LAYOUT_DEINTERLEAVED,
    LAYOUT_INORDER,
    Oracle,
    denote,
)
from repro.types import I8, I16, I32, U8, U16, U32
from repro.uber import instructions as U

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy unavailable")

LANES = 32


def assert_bank_identical(bank_spec, expr, layout=LAYOUT_INORDER,
                          require_plan=True):
    """Batched evaluation of ``expr`` must match scalar denote env by env."""
    bank = valuation.environment_bank(bank_spec, seed=0)
    bank_data = valuation.bank_arrays(bank)
    assert bank_data is not None
    ev = BatchedEvaluator()
    plan = ev.plan_for(expr)
    if plan is None or not batch_plan.plan_usable(plan, bank_data):
        assert not require_plan, f"no batched plan for {expr!r}"
        return
    scalar_rows = []
    scalar_error = False
    for env in bank:
        try:
            scalar_rows.append(denote(expr, env, layout))
        except EvaluationError:
            scalar_error = True
            break
    if scalar_error:
        # Errors depend only on structure + buffer shapes, so the batched
        # evaluator must refuse the whole bank the same way.
        with pytest.raises(EvaluationError):
            ev.denote_bank(plan, bank_data, layout)
        return
    got = ev.denote_bank(plan, bank_data, layout)
    assert got.shape == (len(bank), len(scalar_rows[0]))
    for i, row in enumerate(scalar_rows):
        assert tuple(int(v) for v in got[i]) == row, f"env {i} differs"


# ---------------------------------------------------------------------------
# Halide IR
# ---------------------------------------------------------------------------

IR_ELEMS = (U8, I8, U16, I16, U32, I32)


@st.composite
def ir_exprs(draw):
    """Random same-type IR trees over two buffers and a free scalar."""
    elem = draw(st.sampled_from(IR_ELEMS))

    def leaf():
        kind = draw(st.sampled_from(["a", "b", "strided", "scalar"]))
        if kind == "scalar":
            return E.Broadcast(E.ScalarVar("s", elem), LANES)
        if kind == "strided":
            return E.Load("B", draw(st.integers(-4, 4)), LANES, elem,
                          draw(st.sampled_from([1, 2])))
        buffer = "A" if kind == "a" else "B"
        return E.Load(buffer, draw(st.integers(-4, 4)), LANES, elem)

    def build(depth):
        if depth == 0:
            return leaf()
        op = draw(st.sampled_from(
            ["add", "sub", "mul", "min", "max", "div", "mod", "shr",
             "select"]
        ))
        a, b = build(depth - 1), build(depth - 1)
        if op == "add":
            return E.Add(a, b)
        if op == "sub":
            return E.Sub(a, b)
        if op == "mul":
            return E.Mul(a, b)
        if op == "min":
            return E.Min(a, b)
        if op == "max":
            return E.Max(a, b)
        if op == "div":
            return E.Div(a, b)
        if op == "mod":
            return E.Mod(a, b)
        if op == "shr":
            return E.Shr(a, b)
        return E.Select(E.GT(a, b), a, b)

    expr = build(draw(st.integers(1, 3)))
    post = draw(st.sampled_from(["none", "cast", "sat_cast", "absd"]))
    if post == "cast":
        return E.Cast(draw(st.sampled_from(IR_ELEMS)), expr)
    if post == "sat_cast":
        return E.SaturatingCast(draw(st.sampled_from(IR_ELEMS)), expr)
    if post == "absd":
        return E.Absd(expr, build(1))
    return expr


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ir_exprs())
def test_ir_batched_matches_scalar(expr):
    assert_bank_identical(expr, expr)


# ---------------------------------------------------------------------------
# Uber instructions
# ---------------------------------------------------------------------------


@st.composite
def uber_exprs(draw):
    """Weighted sums, products and fixups over u8/i8 loads."""
    elem = draw(st.sampled_from([U8, I8]))
    out_elem = draw(st.sampled_from([I16, I32]))

    def load():
        return U.LoadData("A", draw(st.integers(-3, 3)), LANES, elem)

    shape = draw(st.sampled_from(["vsmpy", "vvmpy", "elemwise", "mux"]))
    if shape == "vsmpy":
        n = draw(st.integers(1, 3))
        reads = tuple(load() for _ in range(n))
        weights = tuple(draw(st.integers(-8, 8)) for _ in range(n))
        acc = U.VsMpyAdd(reads, weights, draw(st.booleans()), out_elem)
    elif shape == "vvmpy":
        n = draw(st.integers(1, 2))
        pairs = tuple((load(), load()) for _ in range(n))
        base = None
        if draw(st.booleans()):
            base = U.VsMpyAdd((load(),), (draw(st.integers(1, 4)),),
                              False, out_elem)
        acc = U.VvMpyAdd(pairs, base, draw(st.booleans()), out_elem)
    elif shape == "elemwise":
        op = draw(st.sampled_from(["absdiff", "min", "max", "avg"]))
        a, b = load(), load()
        if op == "absdiff":
            return U.AbsDiff(a, b)
        if op == "min":
            return U.Minimum(a, b)
        if op == "max":
            return U.Maximum(a, b)
        return U.Average(a, b, draw(st.booleans()))
    else:
        a, b = load(), load()
        return U.Mux(draw(st.sampled_from(["gt", "eq", "lt"])), a, b,
                     load(), load())
    post = draw(st.sampled_from(["none", "narrow", "shift"]))
    if post == "narrow":
        return U.Narrow(acc, draw(st.sampled_from([U8, I8, I16])),
                        shift=draw(st.integers(0, 6)),
                        round=draw(st.booleans()),
                        saturate=draw(st.booleans()))
    if post == "shift":
        return U.ShiftRight(acc, draw(st.integers(0, 7)),
                            round=draw(st.booleans()))
    return acc


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(uber_exprs())
def test_uber_batched_matches_scalar(expr):
    assert_bank_identical(expr, expr)


# ---------------------------------------------------------------------------
# HVX programs (checked against an IR footprint spec's bank)
# ---------------------------------------------------------------------------

#: spec whose valuation bank covers every window the HVX strategies read
FOOTPRINT = E.Add(E.Load("A", -8, 80, U8), E.Load("B", -8, 80, U8))
HVX_LANES = 64


@st.composite
def hvx_exprs(draw):
    """Templated HVX chains: elementwise, widening and narrowing forms."""

    def load(buffer="A"):
        return H.HvxLoad(buffer, draw(st.integers(-4, 4)), HVX_LANES, U8)

    shape = draw(st.sampled_from(
        ["elemwise", "widen_narrow", "splat", "shift", "permute"]
    ))
    if shape == "elemwise":
        op = draw(st.sampled_from(
            ["vadd", "vsub", "vadd_sat", "vavg", "vavg_rnd", "vnavg",
             "vabsdiff", "vmax", "vmin", "vand", "vor", "vxor"]
        ))
        return H.HvxInstr(op, (load("A"), load("B")))
    if shape == "widen_narrow":
        pair = H.HvxInstr("vmpy", (load("A"), load("B")))
        if draw(st.booleans()):
            return pair
        hi = H.HvxInstr("hi", (pair,))
        lo = H.HvxInstr("lo", (pair,))
        op = draw(st.sampled_from(
            ["vasrn", "vasrn_sat_u", "vasrn_rnd_sat_u", "vpacke"]
        ))
        if op == "vpacke":
            return H.HvxInstr("vpacke", (hi, lo))
        return H.HvxInstr(op, (hi, lo), (draw(st.integers(0, 7)),))
    if shape == "splat":
        splat = H.HvxSplat(E.ScalarVar("s", U8), U8, HVX_LANES)
        return H.HvxInstr(draw(st.sampled_from(["vadd", "vmin", "vmax"])),
                          (load("A"), splat))
    if shape == "shift":
        op = draw(st.sampled_from(["vasl", "vasr", "vasr_rnd", "vlsr"]))
        return H.HvxInstr(op, (load("A"),), (draw(st.integers(0, 7)),))
    a, b = load("A"), load("B")
    op = draw(st.sampled_from(["valign", "vror", "vcombine", "vshuffvdd"]))
    if op == "valign":
        return H.HvxInstr("valign", (a, b), (draw(st.integers(0, 7)),))
    if op == "vror":
        return H.HvxInstr("vror", (a,), (draw(st.integers(0, 70)),))
    if op == "vshuffvdd":
        return H.HvxInstr("vshuffvdd", (H.HvxInstr("vcombine", (a, b)),))
    return H.HvxInstr(op, (a, b))


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(hvx_exprs())
def test_hvx_batched_matches_scalar(expr):
    assert_bank_identical(FOOTPRINT, expr)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(hvx_exprs())
def test_hvx_deinterleaved_layout_matches_scalar(expr):
    """Pair results re-read deinterleaved; vectors must refuse the layout
    identically on both paths."""
    assert_bank_identical(FOOTPRINT, expr, layout=LAYOUT_DEINTERLEAVED)


def test_out_of_range_load_refutes_not_crashes():
    """A candidate reading past the halo is refuted on both paths."""
    far = H.HvxInstr("vadd", (
        H.HvxLoad("A", 1 << 14, HVX_LANES, U8),
        H.HvxLoad("B", 0, HVX_LANES, U8),
    ))
    spec = E.Add(E.Load("A", 0, HVX_LANES, U8), E.Load("B", 0, HVX_LANES, U8))
    for batch in (True, False):
        oracle = Oracle(batch_eval=batch)
        assert oracle.equivalent(spec, far) is False


def test_unbound_scalar_refutes_not_crashes():
    spec = E.Add(E.Load("A", 0, LANES, U8), E.Load("B", 0, LANES, U8))
    cand = E.Add(E.Load("A", 0, LANES, U8),
                 E.Broadcast(E.ScalarVar("missing", U8), LANES))
    for batch in (True, False):
        assert Oracle(batch_eval=batch).equivalent(spec, cand) is False


def test_elem_mismatched_bank_keeps_scalar_path():
    """A load claiming a different element type than the bank's buffer must
    not run batched (its compile-time ranges would be unsound)."""
    spec = E.Add(E.Load("A", 0, LANES, U16), E.Load("B", 0, LANES, U16))
    cand = E.Cast(U16, E.Load("A", 0, LANES, I8))
    bank = valuation.environment_bank(spec, seed=0)
    bank_data = valuation.bank_arrays(bank)
    ev = BatchedEvaluator()
    plan = ev.plan_for(cand)
    assert plan is not None
    assert not batch_plan.plan_usable(plan, bank_data)
    # The oracle's verdict is still correct, via the scalar fallback.
    for batch in (True, False):
        assert Oracle(batch_eval=batch).equivalent(spec, cand) is False


# ---------------------------------------------------------------------------
# Oracle parity: counterexample indices, programs, cache keys
# ---------------------------------------------------------------------------


def test_counterexample_indices_identical():
    """The batched bank scan must record the same first-mismatch index."""
    la, lb = E.Load("A", 0, LANES, U8), E.Load("B", 0, LANES, U8)
    spec = E.Add(la, lb)
    wrong = [
        E.Sub(la, lb),
        E.Add(la, E.Load("B", 1, LANES, U8)),
        E.Max(la, lb),
        E.Add(E.Add(la, lb), E.Broadcast(E.ScalarVar("s", U8), LANES)),
    ]
    batched, scalar = Oracle(batch_eval=True), Oracle(batch_eval=False)
    for cand in wrong:
        assert batched.equivalent(spec, cand) is False
        assert scalar.equivalent(spec, cand) is False
        got = [i for i, _env in batched.counterexamples_for(spec)]
        want = [i for i, _env in scalar.counterexamples_for(spec)]
        assert got == want


def test_lane0_uses_env0_without_full_bank():
    la, lb = E.Load("A", 0, LANES, U8), E.Load("B", 0, LANES, U8)
    spec = E.Add(la, lb)
    oracle = Oracle()
    assert oracle.equivalent_lane0(spec, E.Add(lb, la)) is True
    assert oracle.equivalent_lane0(spec, E.Sub(la, lb)) is False
    # The pruning check alone never built the 10-environment bank.
    assert spec not in oracle._bank_cache
    assert oracle.env0_for(spec) == oracle.bank_for(spec)[0]


def test_compile_identical_with_and_without_batching():
    from repro.hvx import program_listing
    from repro.pipeline import compile_pipeline
    from repro.synthesis.stats import SynthesisStats
    from repro.workloads.base import get

    for name in ("mul", "add"):
        wl = get(name)
        runs = {}
        for batch in (True, False):
            stats = SynthesisStats()
            compiled = compile_pipeline(wl.build(), backend="rake",
                                        stats=stats, batch_eval=batch)
            listing = "\n".join(
                program_listing(ce.program)
                for cs in compiled.stages for ce in cs.exprs
            )
            runs[batch] = (listing, stats.total_counterexamples,
                           stats.total_queries)
        assert runs[True] == runs[False]


def test_verdict_cache_warm_loads_across_batching_modes(tmp_path):
    """A disk store populated by the scalar oracle must fully warm-load the
    batched oracle: verdict keys do not depend on the evaluation engine."""
    from repro.pipeline import compile_pipeline
    from repro.synthesis.stats import SynthesisStats
    from repro.workloads.base import get

    wl = get("mul")
    compile_pipeline(wl.build(), backend="rake", batch_eval=False,
                     cache_dir=str(tmp_path))
    warm = SynthesisStats()
    compile_pipeline(wl.build(), backend="rake", batch_eval=True,
                     stats=warm, cache_dir=str(tmp_path))
    assert warm.total_cache_misses == 0
    assert warm.total_cache_hits > 0
