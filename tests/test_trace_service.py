"""Traced jobs in the compilation service.

Covers the wire contract added for observability: ``trace: true`` in a
:class:`CompileRequest` gives the job a ``trace_id``, the span tree is
retrievable via ``GET /jobs/<id>?trace=1``, traced spans fold into
``/metrics`` histograms, and legacy compile functions that predate the
``tracer`` keyword keep working untouched.
"""

import json
import urllib.request

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro.service import CompileRequest, CompileServer, ServiceClient
from repro.service.protocol import JOB_DONE, JobView, ProtocolError
from repro.service.scheduler import CompileResult, JobScheduler
from repro.trace.export import validate_chrome_trace  # noqa: F401


def traced_compile(request, cancel, cache, tracer=None):
    """Stub compile that records a tiny span tree when traced."""
    if tracer is not None:
        with tracer.span("pipeline.compile", backend=request.backend):
            with tracer.span("oracle.query", cache="miss"):
                pass
    return CompileResult(workload=request.workload, backend=request.backend,
                         total_cycles=1)


def legacy_compile(request, cancel, cache):
    return CompileResult(workload=request.workload, backend=request.backend,
                         total_cycles=1)


class TestProtocol:
    def test_trace_defaults_false_and_roundtrips(self):
        req = CompileRequest(workload="mul")
        assert req.trace is False
        from repro.service.protocol import PROTOCOL_VERSION

        wire = CompileRequest.from_dict(
            {"v": PROTOCOL_VERSION, "workload": "mul", "trace": True})
        assert wire.trace is True

    def test_trace_must_be_boolean(self):
        with pytest.raises(ProtocolError, match="trace must be a boolean"):
            CompileRequest(workload="mul", trace=1).validate()

    def test_jobview_trace_id_roundtrips(self):
        view = JobView(id="j1", state=JOB_DONE, request=CompileRequest(
            workload="mul"), trace_id="cafe")
        assert JobView.from_dict(view.to_dict()).trace_id == "cafe"
        assert JobView.from_dict(
            JobView(id="j2", state=JOB_DONE,
                    request=CompileRequest(workload="mul")).to_dict()
        ).trace_id is None


class TestScheduler:
    def test_traced_job_records_tree(self):
        s = JobScheduler(workers=1, compile_fn=traced_compile)
        try:
            job, _ = s.submit(CompileRequest(workload="mul", trace=True))
            done = s.wait(job.id, timeout=10)
            assert done.state == JOB_DONE
            assert done.trace_id is not None
            assert done.trace["trace_id"] == done.trace_id
            names = [sp["name"] for sp in done.trace["spans"]]
            assert names == ["pipeline.compile"]
            assert done.view().trace_id == done.trace_id
        finally:
            s.shutdown(drain=False)

    def test_untraced_job_has_no_tracer(self):
        s = JobScheduler(workers=1, compile_fn=traced_compile)
        try:
            job, _ = s.submit(CompileRequest(workload="mul"))
            done = s.wait(job.id, timeout=10)
            assert done.state == JOB_DONE
            assert done.trace_id is None
            assert done.trace is None
        finally:
            s.shutdown(drain=False)

    def test_legacy_compile_fn_never_sees_tracer(self):
        # compile functions without a ``tracer`` parameter predate tracing;
        # a trace request degrades to an untraced job instead of a crash.
        s = JobScheduler(workers=1, compile_fn=legacy_compile)
        try:
            job, _ = s.submit(CompileRequest(workload="mul", trace=True))
            done = s.wait(job.id, timeout=10)
            assert done.state == JOB_DONE
            assert done.trace_id is None
            assert done.trace is None
        finally:
            s.shutdown(drain=False)

    def test_traced_spans_fold_into_metrics(self):
        s = JobScheduler(workers=1, compile_fn=traced_compile)
        try:
            job, _ = s.submit(CompileRequest(workload="mul", trace=True))
            assert s.wait(job.id, timeout=10).state == JOB_DONE
            metrics = s.metrics.as_dict()
            assert "repro_span_pipeline_compile_seconds" in metrics
            assert "repro_span_oracle_query_seconds" in metrics
            assert metrics["repro_span_oracle_query_seconds"]["count"] == 1
        finally:
            s.shutdown(drain=False)


@pytest.fixture
def server():
    srv = CompileServer(workers=1, compile_fn=traced_compile,
                        quiet=True).start()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


class TestHttp:
    def test_trace_query_returns_tree(self, client):
        reply = client.submit(CompileRequest(workload="mul", trace=True))
        view = client.wait(reply["id"], timeout=10)
        assert view.state == JOB_DONE
        assert view.trace_id is not None
        tree = client.trace(reply["id"])
        assert tree["trace_id"] == view.trace_id
        assert [sp["name"] for sp in tree["spans"]] == ["pipeline.compile"]

    def test_default_view_omits_tree(self, server, client):
        reply = client.submit(CompileRequest(workload="mul", trace=True))
        client.wait(reply["id"], timeout=10)
        raw = urllib.request.urlopen(
            server.url + f"/jobs/{reply['id']}", timeout=5).read()
        payload = json.loads(raw)
        assert "trace" not in payload
        assert payload["trace_id"] is not None

    def test_untraced_job_trace_is_null(self, client):
        reply = client.submit(CompileRequest(workload="mul"))
        view = client.wait(reply["id"], timeout=10)
        assert view.trace_id is None
        assert client.trace(reply["id"]) is None
