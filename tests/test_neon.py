"""Tests for the preliminary ARM Neon port (paper Section 6).

Same uber-instructions, different interpreter + grammars: the synthesis
machinery retargets by swapping the sketch function.
"""

import pytest

from repro.hvx import isa as H
from repro.hvx.values import Vec, VecPair
from repro.ir import builder as B
from repro.neon import NEON_VBYTES, neon_selector, select_instructions_neon
from repro.synthesis.oracle import Oracle
from repro.types import I16, U16, U8

L = 16  # u8 lanes in a Q register


def u8v(offset=0):
    return B.load("in", offset, L, U8)


def ops_of(program):
    return [n.op for n in program if isinstance(n, H.HvxInstr)]


def run(op, args, imms=()):
    return H.lookup(op).sem_fn(tuple(args), tuple(imms))


class TestNeonSemantics:
    def test_vmovl_in_order(self):
        out = run("neon.vmovl_u", [Vec(U8, (1, 250))])
        assert isinstance(out, VecPair)
        assert out.values == (1, 250)
        assert out.elem == U16

    def test_vmull_in_order_product(self):
        out = run("neon.vmull", [Vec(U8, (10, 20)), Vec(U8, (3, 4))])
        assert out.values == (30, 80)

    def test_vmlal(self):
        acc = VecPair(U16, (5, 5))
        out = run("neon.vmlal", [acc, Vec(U8, (2, 3)), Vec(U8, (10, 10))])
        assert out.values == (25, 35)

    def test_vaddw_widens_by_value(self):
        acc = VecPair(U16, (100, 100))
        out = run("neon.vaddw", [acc, Vec(U8, (255, 1))])
        assert out.values == (355, 101)

    def test_vabal(self):
        acc = VecPair(U16, (10, 10))
        out = run("neon.vabal", [acc, Vec(U8, (5, 9)), Vec(U8, (9, 5))])
        assert out.values == (14, 14)

    def test_vqmovun_saturates(self):
        p = VecPair(I16, (-5, 300))
        assert run("neon.vqmovun", [p]).values == (0, 255)

    def test_vqrshrun_fused(self):
        p = VecPair(I16, (100, 5000))
        out = run("neon.vqrshrun_n", [p], imms=(4,))
        assert out.values == ((100 + 8) >> 4, 255)

    def test_vext_window(self):
        out = run("neon.vext", [Vec(U8, (0, 1, 2, 3)), Vec(U8, (4, 5, 6, 7))],
                  imms=(3,))
        assert out.values == (3, 4, 5, 6)

    def test_vuzp_vzip_roundtrip(self):
        p = VecPair(U8, tuple(range(8)))
        assert run("neon.vzip", [run("neon.vuzp", [p])]) == p

    def test_vrhadd(self):
        out = run("neon.vrhadd", [Vec(U8, (5,)), Vec(U8, (6,))])
        assert out.values == (6,)


class TestNeonSynthesis:
    def test_kernel_uses_vmlal_chain(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        result = select_instructions_neon(row)
        ops = ops_of(result.program)
        assert "neon.vmlal" in ops or "neon.vmull" in ops
        assert "vtmpy" not in ops  # no HVX instructions leak in
        assert Oracle().equivalent(row, result.program)

    def test_fused_narrow(self):
        row = B.widen(u8v(-1)) + B.widen(u8v(0)) * 2 + B.widen(u8v(1))
        e = B.cast(U8, (row + 8) >> 4)
        result = select_instructions_neon(e)
        ops = ops_of(result.program)
        assert any(op in ("neon.vrshrn_n", "neon.vqrshrun_n") for op in ops)
        assert Oracle().equivalent(e, result.program)

    def test_widening_add_uses_vaddw(self):
        e = B.load("acc", 0, L, U16) + B.widen(u8v())
        result = select_instructions_neon(e)
        ops = ops_of(result.program)
        assert "neon.vaddw" in ops or "neon.vmlal" in ops
        assert Oracle().equivalent(e, result.program)

    def test_absd_and_average(self):
        e = B.absd(u8v(0), u8v(1))
        assert "neon.vabd" in ops_of(select_instructions_neon(e).program)
        avg = B.cast(U8, (B.widen(u8v(0)) + B.widen(u8v(1)) + 1) >> 1)
        assert "neon.vrhadd" in ops_of(select_instructions_neon(avg).program)

    def test_unaligned_windows_use_vext(self):
        e = B.widen(u8v(1)) + B.widen(u8v(2))
        result = select_instructions_neon(e)
        assert "neon.vext" in ops_of(result.program)
        assert Oracle().equivalent(e, result.program)

    def test_saturating_clamp(self):
        e = B.cast(U8, B.clamp(B.widen(u8v()) + B.widen(u8v(1)), 0, 255))
        result = select_instructions_neon(e)
        ops = ops_of(result.program)
        assert "neon.vqmovun" in ops or "neon.vqadd" in ops
        assert Oracle().equivalent(e, result.program)

    def test_selector_stats_accumulate(self):
        selector = neon_selector()
        selector.select(B.widen(u8v()))
        assert selector.stats.total_queries > 0

    def test_vector_width_is_q_register(self):
        assert NEON_VBYTES == 16
