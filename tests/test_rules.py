"""The rewrite-rule library (:mod:`repro.rules`).

Soundness is the point under test: a rule hit must return a program the
full valuation bank just verified, byte-identical on replayed traffic,
and *any* corruption — tampered templates, torn files, unreadable
libraries — must degrade to plain CEGIS, never to a wrong selection.
The differential sweep at the bottom is the acceptance check: compiling
with a warm library and compiling without one select identical
instructions at identical cost.
"""

from __future__ import annotations

import json

import pytest

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the dev env
    HAVE_HYPOTHESIS = False

from repro import faults
from repro import workloads  # noqa: F401 - populate the registry
from repro.cli import main
from repro.faults import FaultPlan, FaultRule
from repro.frontend import lower_pipeline
from repro.ir import builder as B
from repro.pipeline import _is_trivial, compile_pipeline
from repro.rules import (
    Rule,
    RuleLibrary,
    abstract_spec,
    encode_node,
    mine_rules,
    rules_file,
)
from repro.rules.codec import Abstraction, decode_node
from repro.service.protocol import CompileRequest
from repro.sim import measure
from repro.synthesis import RakeSelector
from repro.synthesis.engine import encode_record
from repro.synthesis.oracle import Oracle
from repro.synthesis.stats import SynthesisStats
from repro.targets import resolve_target
from repro.types import U8
from repro.workloads.base import get, names


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def _mul_spec(buf="a", k=2):
    """A small widening-multiply spec; ``buf``/``k`` vary identity."""
    return B.widen(B.load(buf, 0, 8, U8)) * k


def workload_specs(name, target="hvx"):
    """Every non-trivial vector expression the pipeline would synthesize."""
    tgt = resolve_target(target)
    lowered = lower_pipeline(get(name).build(), lanes=tgt.lanes,
                             vector_bytes=tgt.vbytes)
    return [e for stage in lowered.stages for e in stage.exprs
            if not _is_trivial(e)]


def _selection(compiled):
    return [repr(ce.program) for cs in compiled.stages for ce in cs.exprs]


def _tamper(tree):
    """Shift every literal load offset in a template by one element.

    The result still type-checks (offsets are unconstrained ints), so the
    only thing standing between the tampered rule and a wrong selection
    is the full-bank re-check.
    """
    changed = False
    if isinstance(tree, dict):
        for key, value in list(tree.items()):
            if key == "offset" and isinstance(value, int):
                tree[key] = value + 1
                changed = True
            else:
                changed |= _tamper(value)
    elif isinstance(tree, list):
        for item in tree:
            changed |= _tamper(item)
    return changed


# -- codec: abstraction keys and template round-trips ------------------------


class TestCodec:
    def test_rename_does_not_change_any_key(self):
        base = abstract_spec(_mul_spec("a"))
        renamed = abstract_spec(_mul_spec("other_buffer"))
        assert renamed.exact == base.exact
        assert renamed.lhs == base.lhs
        assert renamed.root == base.root

    def test_constant_changes_exact_but_not_lhs(self):
        base = abstract_spec(_mul_spec(k=2))
        other = abstract_spec(_mul_spec(k=7))
        assert other.exact != base.exact
        assert other.lhs == base.lhs

    def test_bindings_recover_the_concrete_spec(self):
        spec = _mul_spec("input_row", k=19)
        ab = Abstraction()
        tree = encode_node(spec, ab)
        json.dumps(tree)  # the template must be JSON-safe
        assert decode_node(tree, ab.bindings()) == spec

    def test_structurally_different_specs_get_different_lhs(self):
        a = abstract_spec(_mul_spec())
        b = abstract_spec(B.widen(B.load("a", 0, 8, U8)) + 2)
        assert a.lhs != b.lhs

    if HAVE_HYPOTHESIS:

        @settings(max_examples=40, deadline=None)
        @given(st.sampled_from(("a", "b", "in", "rows0")),
               st.integers(min_value=1, max_value=255))
        def test_lhs_key_is_name_and_constant_invariant(self, name, k):
            base = abstract_spec(_mul_spec("a", 2))
            p = abstract_spec(_mul_spec(name, k))
            assert p.lhs == base.lhs
            assert p.root == base.root
            assert (p.exact == base.exact) == (k == 2)

        @settings(max_examples=40, deadline=None)
        @given(st.sampled_from(("a", "b", "in")),
               st.integers(min_value=0, max_value=255),
               st.sampled_from(("add", "mul", "minimum", "maximum")))
        def test_template_roundtrip_is_identity(self, name, k, op):
            spec = getattr(B, op)(B.widen(B.load(name, 0, 8, U8)), k)
            ab = Abstraction()
            tree = encode_node(spec, ab)
            assert decode_node(tree, ab.bindings()) == spec


# -- the single definition of spec identity (anti-drift regression) ----------


class TestCanonicalSpecSharing:
    def test_coalescer_and_rules_share_the_engine_definition(self):
        """The verdict cache, the request coalescer and the rule library
        must never disagree about what "the same spec" means."""
        from repro.rules import codec
        from repro.service import coalesce
        from repro.synthesis import engine

        assert coalesce.canonical_spec is engine.canonical_spec
        assert codec.canonical_spec is engine.canonical_spec

    def test_spec_key_and_exact_key_agree_on_renames(self):
        from repro.synthesis.engine import spec_key

        assert spec_key(_mul_spec("a")) == spec_key(_mul_spec("zzz"))
        assert (abstract_spec(_mul_spec("a")).exact
                == abstract_spec(_mul_spec("zzz")).exact)


# -- library: learn, match, persist ------------------------------------------


@pytest.mark.parametrize("target", ["hvx", "neon"])
def test_mined_rule_reproduces_the_original_selection(target):
    specs = workload_specs("mul", target)
    assert specs
    spec = specs[0]
    selector = RakeSelector(target=target)
    program = selector.select(spec).program
    library = RuleLibrary(target=target)
    assert library.learn(spec, program, provenance={"src": "test"})
    oracle = Oracle()
    matched = library.match(spec, oracle)
    assert repr(matched) == repr(program)
    assert oracle.stats.rule_recheck_failures == 0


def test_learn_is_idempotent():
    spec = workload_specs("mul")[0]
    program = RakeSelector().select(spec).program
    library = RuleLibrary()
    assert library.learn(spec, program)
    assert not library.learn(spec, program)
    assert len(library) == 1


def test_library_persists_and_reloads(tmp_path):
    path = rules_file(tmp_path, "hvx")
    spec = workload_specs("mul")[0]
    program = RakeSelector().select(spec).program
    library = RuleLibrary(path)
    library.learn(spec, program)
    library.flush()
    assert path.exists()
    reloaded = RuleLibrary(path)
    assert len(reloaded) == 1
    assert repr(reloaded.match(spec, Oracle())) == repr(program)


def test_tampered_rhs_is_refuted_by_the_recheck(tmp_path):
    """A well-typed but wrong template must be caught by the full-bank
    re-check — soundness never rests on the stored rule being honest."""
    spec = workload_specs("mul")[0]
    program = RakeSelector().select(spec).program
    pattern = abstract_spec(spec)
    from repro.rules import encode_program

    rhs = encode_program(program, spec)
    assert _tamper(rhs), "expected at least one load offset to tamper"
    rule = Rule(target="hvx", exact=pattern.exact, lhs=pattern.lhs,
                root=pattern.root, rhs=rhs)
    path = rules_file(tmp_path, "hvx")
    path.write_text(encode_record(rule.to_record()) + "\n")
    library = RuleLibrary(path)
    assert len(library) == 1
    oracle = Oracle()
    assert library.match(spec, oracle) is None
    assert oracle.stats.rule_recheck_failures >= 1


def test_corrupt_lines_are_quarantined_and_compacted(tmp_path):
    path = rules_file(tmp_path, "hvx")
    spec = workload_specs("mul")[0]
    program = RakeSelector().select(spec).program
    library = RuleLibrary(path)
    library.learn(spec, program)
    library.flush()
    with open(path, "a") as fh:
        fh.write('{"not": "a rule record"}\n')
        fh.write("torn garbage\n")
    reloaded = RuleLibrary(path)
    assert reloaded.corrupt_lines == 2
    assert reloaded.quarantined is not None and reloaded.quarantined.exists()
    assert len(reloaded) == 1
    assert reloaded.match(spec, Oracle()) is not None
    # The compacted file is clean on the next load.
    clean = RuleLibrary(path)
    assert clean.corrupt_lines == 0
    assert len(clean) == 1


def test_rules_load_fault_degrades_to_empty_library(tmp_path):
    path = rules_file(tmp_path, "hvx")
    spec = workload_specs("mul")[0]
    program = RakeSelector().select(spec).program
    seeded = RuleLibrary(path)
    seeded.learn(spec, program)
    seeded.flush()
    with faults.injected(FaultPlan(rules=[
        FaultRule(site=faults.SITE_RULES_LOAD, kind="oserror", on_nth=1),
    ])):
        library = RuleLibrary(path)
    assert library.load_errors == 1
    assert len(library) == 0
    assert library.match(spec, Oracle()) is None
    # The compile itself is unaffected: full synthesis, correct result.
    compiled = compile_pipeline(get("mul").build(), backend="rake",
                                rules=library)
    plain = compile_pipeline(get("mul").build(), backend="rake")
    assert _selection(compiled) == _selection(plain)


# -- pipeline integration: the fast path -------------------------------------


def test_warm_library_bypasses_sketch_and_swizzle_enumeration():
    library = RuleLibrary()
    cold_stats = SynthesisStats()
    cold = compile_pipeline(get("mul").build(), backend="rake",
                            rules=library, stats=cold_stats)
    assert cold.rule_hits == 0
    assert cold_stats.rules_mined >= 1
    assert cold_stats.rule_misses >= 1

    warm_stats = SynthesisStats()
    warm = compile_pipeline(get("mul").build(), backend="rake",
                            rules=library, stats=warm_stats)
    assert warm.rule_hits == warm.optimized_exprs > 0
    assert warm_stats.rule_hits == warm.rule_hits
    assert warm_stats.stages["lifting"].queries == 0
    assert warm_stats.stages["sketching"].queries == 0
    assert warm_stats.stages["swizzling"].queries == 0

    plain = compile_pipeline(get("mul").build(), backend="rake")
    assert _selection(warm) == _selection(plain)
    assert measure(warm).total == measure(plain).total


def test_tampered_library_still_compiles_correctly(tmp_path):
    """With every stored rule corrupted, the pipeline silently falls back
    to CEGIS and selects exactly what it would have without rules."""
    path = rules_file(tmp_path, "hvx")
    library = RuleLibrary(path)
    compile_pipeline(get("mul").build(), backend="rake", rules=library)
    library.flush()
    from repro.synthesis.engine import decode_record

    tampered_lines = []
    for line in path.read_text().splitlines():
        rec = decode_record(line)
        _tamper(rec["rhs"])
        tampered_lines.append(encode_record(rec))
    path.write_text("\n".join(tampered_lines) + "\n")

    tampered = RuleLibrary(path)
    stats = SynthesisStats()
    compiled = compile_pipeline(get("mul").build(), backend="rake",
                                rules=tampered, stats=stats)
    plain = compile_pipeline(get("mul").build(), backend="rake")
    assert _selection(compiled) == _selection(plain)
    assert stats.rule_hits == 0
    assert stats.rule_recheck_failures >= 1


def test_mine_rules_warms_a_library(tmp_path):
    reports = mine_rules(workloads=["mul"], targets=("hvx",),
                         rules_dir=tmp_path)
    assert len(reports) == 1
    assert reports[0].mined >= 1
    assert rules_file(tmp_path, "hvx").exists()
    # A second mining pass over the same workload is all hits, no growth.
    again = mine_rules(workloads=["mul"], targets=("hvx",),
                       rules_dir=tmp_path)
    assert again[0].rule_hits >= 1
    assert again[0].mined == 0


# -- counters, protocol, CLI --------------------------------------------------


def test_rule_counters_merge_and_serialize():
    a = SynthesisStats()
    a.count_rule_hit()
    a.count_rule_mined()
    b = SynthesisStats()
    b.count_rule_miss()
    b.count_rule_miss()
    b.count_rule_recheck_failure()
    merged = a.merged_with(b)
    assert merged.rule_hits == 1
    assert merged.rule_misses == 2
    assert merged.rules_mined == 1
    assert merged.rule_recheck_failures == 1
    totals = merged.as_dict()["totals"]
    for field in ("rule_hits", "rule_misses", "rules_mined",
                  "rule_recheck_failures"):
        assert field in totals


def test_compile_request_rules_field_round_trips():
    request = CompileRequest(workload="mul", rules=True).validate()
    assert CompileRequest.from_dict(request.to_dict()).rules is True
    # Old clients that never send the field keep working.
    data = CompileRequest(workload="mul").to_dict()
    del data["rules"]
    assert CompileRequest.from_dict(data).rules is False


def test_rules_on_and_off_jobs_never_coalesce():
    from repro.service.coalesce import request_key

    on = CompileRequest(workload="mul", rules=True)
    off = CompileRequest(workload="mul", rules=False)
    assert request_key(on) != request_key(off)


class TestRulesCli:
    def test_mine_then_compile_hits(self, tmp_path, capsys):
        rc = main(["mine-rules", "--target", "hvx", "--workloads", "mul",
                   "--rules-dir", str(tmp_path)])
        assert rc == 0
        assert "mined" in capsys.readouterr().out
        rc = main(["compile", "mul", "--backend", "rake", "--rules",
                   "--rules-dir", str(tmp_path)])
        assert rc == 0
        assert "via rules" in capsys.readouterr().out

    def test_unwritable_rules_dir_is_one_line_error(self, capsys):
        rc = main(["compile", "mul", "--backend", "rake", "--rules",
                   "--rules-dir", "/proc/nonexistent"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: --rules:")
        assert err.strip().count("\n") == 0

    def test_unwritable_mine_rules_dir_is_one_line_error(self, capsys):
        rc = main(["mine-rules", "--rules-dir", "/proc/nonexistent"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: --rules-dir:")
        assert err.strip().count("\n") == 0


# -- the acceptance differential: --rules vs --no-rules ----------------------


def _differential(name, target):
    library = RuleLibrary(target=target)
    compile_pipeline(get(name).build(), backend="rake", target=target,
                     rules=library)  # cold pass mines
    warm = compile_pipeline(get(name).build(), backend="rake", target=target,
                            rules=library)
    plain = compile_pipeline(get(name).build(), backend="rake", target=target)
    assert _selection(warm) == _selection(plain)
    assert measure(warm).total == measure(plain).total
    if warm.optimized_exprs:
        assert warm.rule_hits == warm.optimized_exprs


SUBSET = ("mul", "add", "dilate3x3")


@pytest.mark.parametrize("target", ["hvx", "neon"])
@pytest.mark.parametrize("name", SUBSET)
def test_rules_differential_subset(name, target):
    _differential(name, target)


@pytest.mark.slow
@pytest.mark.parametrize("target", ["hvx", "neon"])
@pytest.mark.parametrize("name", names())
def test_rules_differential_full_suite(name, target):
    """All 21 workloads x both targets: a warm rule library changes
    nothing observable — identical instructions at identical cost."""
    _differential(name, target)
