"""Unit and property tests for the fixed-point type system."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeMismatchError
from repro.types import (
    BOOL,
    I16,
    I8,
    SCALAR_TYPES,
    ScalarType,
    U16,
    U8,
    VectorType,
    scalar_type,
    vector_type,
)


class TestScalarType:
    def test_names(self):
        assert U8.name == "u8"
        assert I16.name == "i16"
        assert BOOL.name == "bool"

    def test_ranges(self):
        assert (U8.min_value, U8.max_value) == (0, 255)
        assert (I8.min_value, I8.max_value) == (-128, 127)
        assert (U16.max_value) == 65535

    def test_lookup_by_name(self):
        for t in SCALAR_TYPES:
            assert scalar_type(t.name) == t

    def test_lookup_unknown(self):
        with pytest.raises(TypeMismatchError):
            scalar_type("f32")

    def test_invalid_bits(self):
        with pytest.raises(TypeMismatchError):
            ScalarType(12, False)

    def test_bool_cannot_be_signed(self):
        with pytest.raises(TypeMismatchError):
            ScalarType(1, True)

    def test_widen_narrow_roundtrip(self):
        assert U8.widened() == U16
        assert U16.narrowed() == U8
        assert I8.widened() == I16

    def test_widen_64_fails(self):
        with pytest.raises(TypeMismatchError):
            ScalarType(64, True).widened()

    def test_narrow_8_fails(self):
        with pytest.raises(TypeMismatchError):
            U8.narrowed()

    def test_wrap_unsigned(self):
        assert U8.wrap(256) == 0
        assert U8.wrap(-1) == 255
        assert U8.wrap(511) == 255

    def test_wrap_signed(self):
        assert I8.wrap(128) == -128
        assert I8.wrap(-129) == 127
        assert I8.wrap(255) == -1

    def test_saturate(self):
        assert U8.saturate(300) == 255
        assert U8.saturate(-5) == 0
        assert I8.saturate(200) == 127
        assert I8.saturate(-200) == -128
        assert I8.saturate(42) == 42

    def test_can_represent(self):
        assert U16.can_represent(U8)
        assert I16.can_represent(U8)
        assert not U16.can_represent(I8)
        assert not I8.can_represent(U8)


@given(st.sampled_from(SCALAR_TYPES), st.integers(-(2 ** 70), 2 ** 70))
def test_wrap_is_idempotent_and_in_range(t, v):
    w = t.wrap(v)
    assert t.min_value <= w <= t.max_value
    assert t.wrap(w) == w


@given(st.sampled_from(SCALAR_TYPES), st.integers(-(2 ** 70), 2 ** 70))
def test_wrap_is_congruent_mod_2n(t, v):
    assert (t.wrap(v) - v) % (1 << t.bits) == 0


@given(st.sampled_from(SCALAR_TYPES), st.integers(-(2 ** 70), 2 ** 70))
def test_saturate_in_range_and_monotone_clamp(t, v):
    s = t.saturate(v)
    assert t.min_value <= s <= t.max_value
    if t.contains(v):
        assert s == v


class TestVectorType:
    def test_basic(self):
        v = VectorType(U8, 128)
        assert v.name == "u8x128"
        assert v.bits == 1024
        assert v.bytes == 128

    def test_widen(self):
        assert VectorType(U8, 64).widened() == VectorType(U16, 64)

    def test_invalid_lanes(self):
        with pytest.raises(TypeMismatchError):
            VectorType(U8, 0)

    def test_vector_type_lookup(self):
        assert vector_type("u16", 64) == VectorType(U16, 64)
