"""Unit + property tests for the IR simplifier.

The load-bearing invariant: simplification never changes the denotation.
"""

from hypothesis import given, settings, strategies as st

from repro.ir import builder as B
from repro.ir import expr as E
from repro.ir.interp import evaluate_vector
from repro.ir.simplify import simplify
from repro.types import I16, U16, U8

from conftest import env_with


def u8v(offset=0, lanes=4):
    return B.load("in", offset, lanes, U8)


class TestRules:
    def test_add_zero(self):
        assert simplify(u8v() + 0) == u8v()
        assert simplify(0 + u8v()) == u8v()

    def test_mul_one_and_zero(self):
        assert simplify(u8v() * 1) == u8v()
        zero = simplify(u8v() * 0)
        assert isinstance(zero, E.Broadcast)

    def test_sub_zero(self):
        assert simplify(u8v() - 0) == u8v()

    def test_shift_zero(self):
        assert simplify(B.shl(u8v(), 0)) == u8v()
        assert simplify(B.shr(u8v(), 0)) == u8v()

    def test_min_self(self):
        assert simplify(B.minimum(u8v(), u8v())) == u8v()

    def test_const_fold_binary(self):
        e = B.broadcast(3, 4, U8) + B.broadcast(4, 4, U8)
        s = simplify(e)
        assert isinstance(s, E.Broadcast)
        assert s.value == E.Const(7, U8)

    def test_const_fold_wraps(self):
        e = B.broadcast(200, 4, U8) + B.broadcast(100, 4, U8)
        s = simplify(e)
        assert s.value == E.Const(44, U8)

    def test_cast_of_const_broadcast(self):
        e = B.cast(U16, B.broadcast(7, 4, U8))
        s = simplify(e)
        assert isinstance(s, E.Broadcast)
        assert s.value == E.Const(7, U16)

    def test_same_type_cast_elided(self):
        e = E.Cast(U8, u8v())
        assert simplify(e) == u8v()

    def test_select_same_arms(self):
        e = B.select(B.lt(u8v(), u8v(1)), u8v(2), u8v(2))
        assert simplify(e) == u8v(2)

    def test_broadcast_sinking(self):
        e = E.Add(B.broadcast(3, 4, U8), B.broadcast(4, 4, U8))
        s = simplify(e)
        assert isinstance(s, E.Broadcast)

    def test_nested_fixpoint(self):
        e = (u8v() * 1 + 0) - 0
        assert simplify(e) == u8v()


_exprs = st.sampled_from([
    u8v() + 0,
    (u8v() * 1) + (u8v(1) * 0),
    B.widen(u8v()) * 2 + B.widen(u8v(1)) * 1,
    B.cast(U8, (B.widen(u8v()) + 8) >> 4),
    B.sat_cast(U8, B.minimum(B.widen(u8v()), B.broadcast(255, 4, U16))),
    B.select(B.lt(u8v(), u8v(1)), u8v() + 0, u8v(1) * 1),
    B.absd(u8v() + 0, u8v(1)),
])


@settings(max_examples=60)
@given(_exprs, st.lists(st.integers(0, 255), min_size=16, max_size=16))
def test_simplify_preserves_semantics(expr, data):
    env = env_with(data=data, origin=4)
    assert evaluate_vector(simplify(expr), env) == evaluate_vector(expr, env)
