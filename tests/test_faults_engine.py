"""Engine resilience under injected faults.

Two hardening layers under test: the ParallelChecker's bounded retry +
process→thread→serial degrade ladder (verdicts must never change, only
the execution mode), and the DiskStore's CRC-checksummed records with
quarantine + compaction of corrupt stores.
"""

import json
import zlib

import pytest

from repro import faults
from repro import workloads  # noqa: F401 - populate the registry
from repro.faults import FaultPlan, FaultRule, RetryPolicy
from repro.ir import builder as B
from repro.synthesis.engine import (
    MODE_SERIAL,
    MODE_THREAD,
    DiskStore,
    ParallelChecker,
    decode_record,
    encode_record,
)
from repro.synthesis.oracle import LAYOUT_INORDER, Oracle
from repro.types import U8, U16


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def u8v(offset=0, lanes=8):
    return B.load("in", offset, lanes, U8)


def _spec_and_candidates():
    spec = B.widen(u8v()) * 2
    candidates = [
        B.widen(u8v()) * 3,                              # wrong
        B.shl(B.widen(u8v()), B.broadcast(1, 8, U16)),   # right
        B.widen(u8v()) * 2,                              # right (later)
    ]
    return spec, candidates


def fast_retry(attempts=2):
    return RetryPolicy(attempts=attempts, base_s=0.0, jitter=0.0)


class TestRetryLadder:
    def test_single_crash_is_retried_not_degraded(self):
        """One injected pool crash: the resubmit succeeds and the checker
        keeps its mode — the ladder is a last resort, not a first move."""
        spec, candidates = _spec_and_candidates()
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD,
                                  retry=fast_retry())
        with faults.injected(FaultPlan(rules=[
            FaultRule(site=faults.SITE_ENGINE_BATCH, kind="crash",
                      on_nth=1, max_fires=1),
        ])):
            verdicts = checker.check_batch(
                Oracle(), spec, candidates, LAYOUT_INORDER)
        assert verdicts == [False, True, True]
        assert checker.mode == MODE_THREAD
        assert checker.retries == 1
        checker.close()

    def test_retries_counted_in_oracle_stats(self):
        spec, candidates = _spec_and_candidates()
        oracle = Oracle()
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD,
                                  retry=fast_retry())
        with faults.injected(FaultPlan(rules=[
            FaultRule(site=faults.SITE_ENGINE_BATCH, kind="crash",
                      on_nth=1, max_fires=1),
        ])):
            checker.check_batch(oracle, spec, candidates, LAYOUT_INORDER)
        assert oracle.stats.retries == 1
        assert oracle.stats.as_dict()["totals"]["retries"] == 1
        checker.close()

    def test_persistent_crashes_exhaust_retries_then_degrade_to_serial(self):
        """Every dispatch crashes: the retry budget is spent at each rung,
        the ladder walks thread → serial, and serial still produces the
        right verdicts (the injection site is the pool dispatch, which
        serial mode never reaches)."""
        spec, candidates = _spec_and_candidates()
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD,
                                  retry=fast_retry(attempts=2))
        plan = FaultPlan(rules=[
            FaultRule(site=faults.SITE_ENGINE_BATCH, kind="crash", every=1),
        ])
        with faults.injected(plan):
            verdicts = checker.check_batch(
                Oracle(), spec, candidates, LAYOUT_INORDER)
        assert verdicts == [False, True, True]
        assert checker.mode == MODE_SERIAL
        # one rung (thread), 1 initial + 2 retries = 3 dispatch attempts,
        # of which 2 were counted as retries
        assert checker.retries == 2
        assert plan.calls(faults.SITE_ENGINE_BATCH) == 3
        checker.close()

    def test_process_rung_degrades_through_thread(self):
        """From process mode, a persistent crash walks both rungs.  The
        injection fires in the parent before submission, so this pins the
        ladder order without the cost of real pool crashes."""
        spec, candidates = _spec_and_candidates()
        checker = ParallelChecker(jobs=2, retry=fast_retry(attempts=0))
        plan = FaultPlan(rules=[
            FaultRule(site=faults.SITE_ENGINE_BATCH, kind="crash", every=1),
        ])
        with faults.injected(plan):
            verdicts = checker.check_batch(
                Oracle(), spec, candidates, LAYOUT_INORDER)
        assert verdicts == [False, True, True]
        assert checker.mode == MODE_SERIAL
        # attempts=0: one dispatch per rung (process, thread), no retries
        assert plan.calls(faults.SITE_ENGINE_BATCH) == 2
        assert checker.retries == 0
        checker.close()

    def test_worker_site_errors_degrade_without_changing_verdicts(self):
        """An injected in-worker error (thread mode shares the plan) is
        just another pool failure: retried, then degraded, never a wrong
        verdict."""
        spec, candidates = _spec_and_candidates()
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD,
                                  retry=fast_retry(attempts=0))
        with faults.injected(FaultPlan(rules=[
            FaultRule(site=faults.SITE_ENGINE_WORKER, kind="error",
                      on_nth=1, max_fires=1),
        ])):
            verdicts = checker.check_batch(
                Oracle(), spec, candidates, LAYOUT_INORDER)
        assert verdicts == [False, True, True]
        checker.close()


class TestCrcRecords:
    def test_round_trip(self):
        line = encode_record({"t": "v", "k": "key", "v": 1})
        assert decode_record(line) == {"t": "v", "k": "key", "v": 1}

    def test_crc_mismatch_rejected(self):
        rec = json.loads(encode_record({"t": "v", "k": "key", "v": 1}))
        rec["v"] = 0  # flip the verdict without restamping
        assert decode_record(json.dumps(rec)) is None

    def test_unparseable_and_non_dict_rejected(self):
        assert decode_record("{torn off mid-li") is None
        assert decode_record("[1, 2, 3]") is None

    def test_legacy_record_without_crc_still_loads(self):
        legacy = json.dumps({"t": "v", "k": "key", "v": 1})
        assert decode_record(legacy) == {"t": "v", "k": "key", "v": 1}

    def test_crc_matches_zlib_of_canonical_body(self):
        body = {"t": "v", "k": "key", "v": 1}
        rec = json.loads(encode_record(body))
        expected = zlib.crc32(
            json.dumps(body, separators=(",", ":"), sort_keys=True).encode()
        )
        assert rec["crc"] == expected


class TestDiskStoreResilience:
    def write_store(self, path, verdicts):
        store = DiskStore(path)
        for key, verdict in verdicts.items():
            store.put_verdict(key, verdict)
        store.flush()
        return store

    def test_corrupt_line_is_quarantined_and_compacted(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        self.write_store(path, {"a": True, "b": False})
        # Corrupt record "a" in a way that still parses as JSON.
        lines = path.read_text().splitlines()
        damaged = []
        for line in lines:
            rec = json.loads(line)
            if rec["k"] == "a":
                rec["v"] = 1 - rec["v"]  # bit flip, stale CRC
                line = json.dumps(rec)
            damaged.append(line)
        path.write_text("\n".join(damaged) + "\n")

        store = DiskStore(path)
        assert store.corrupt_lines == 1
        assert store.get_verdict("a") is None      # never a wrong verdict
        assert store.get_verdict("b") is False     # survivor kept
        quarantine = tmp_path / "oracle.jsonl.quarantine"
        assert store.quarantined == quarantine and quarantine.exists()
        # The compacted store is fully valid: every line decodes.
        for line in path.read_text().splitlines():
            assert decode_record(line) is not None

    def test_torn_tail_line_is_dropped(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        self.write_store(path, {"a": True})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": "v", "k": "torn')  # crashed writer's tail
        store = DiskStore(path)
        assert store.corrupt_lines == 1
        assert store.get_verdict("a") is True

    def test_duplicate_records_are_idempotent(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        line = encode_record({"t": "v", "k": "a", "v": 1})
        path.write_text(line + "\n" + line + "\n")
        store = DiskStore(path)
        assert store.corrupt_lines == 0
        assert store.get_verdict("a") is True

    def test_legacy_store_without_crcs_warm_loads(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        path.write_text(
            json.dumps({"t": "v", "k": "old", "v": 1}) + "\n"
            + json.dumps({"t": "c", "k": "spec", "i": 4}) + "\n"
        )
        store = DiskStore(path)
        assert store.corrupt_lines == 0
        assert store.get_verdict("old") is True
        assert store.counterexample_indices("spec") == [4]

    def test_injected_torn_flush_never_corrupts_reload(self, tmp_path):
        """A flush torn mid-line costs at most the torn record: the next
        load skips it, quarantines, and compacts to a fully valid file."""
        path = tmp_path / "oracle.jsonl"
        store = DiskStore(path)
        for i in range(8):
            store.put_verdict(f"k{i}", i % 2 == 0)
        with faults.injected(FaultPlan(rules=[
            FaultRule(site=faults.SITE_CACHE_FLUSH, kind="torn_write",
                      every=1),
        ])):
            store.flush()

        reloaded = DiskStore(path)
        assert reloaded.corrupt_lines == 1     # exactly the torn tail
        for i in range(8):
            verdict = reloaded.get_verdict(f"k{i}")
            assert verdict in (None, i % 2 == 0)   # right or absent
        for line in path.read_text().splitlines():
            assert decode_record(line) is not None

    def test_injected_flush_oserror_requeues_pending(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        store = DiskStore(path)
        store.put_verdict("a", True)
        with faults.injected(FaultPlan(rules=[
            FaultRule(site=faults.SITE_CACHE_FLUSH, kind="oserror",
                      every=1),
        ])):
            store.flush()
        assert store.write_errors == 1
        assert not path.exists()
        store.flush()  # fault cleared: the re-queued record lands
        assert DiskStore(path).get_verdict("a") is True

    def test_injected_load_oserror_starts_empty_not_crashed(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        self.write_store(path, {"a": True})
        with faults.injected(FaultPlan(rules=[
            FaultRule(site=faults.SITE_CACHE_LOAD, kind="oserror",
                      every=1),
        ])):
            store = DiskStore(path)
        assert store.load_errors == 1
        assert store.get_verdict("a") is None
        assert len(store) == 0
