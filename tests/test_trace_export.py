"""Tests for trace exporters, the timeline renderer and the logger."""

import json

import pytest

from repro.reporting import trace_timeline
from repro.trace import (
    Tracer,
    chrome_trace,
    flamegraph_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_flamegraph,
)
from repro.trace.log import (
    Logger,
    configure,
    current_level,
    get_logger,
)


def _sample_tree():
    tr = Tracer(trace_id="feedbeef")
    with tr.span("pipeline", backend="rake") as sp:
        sp.event("marker", n=3)
        with tr.span("lifting"):
            pass
        with tr.span("lowering"):
            with tr.span("oracle.query", cache="miss"):
                pass
    return tr.tree()


class TestChromeTrace:
    def test_valid_and_complete(self):
        payload = chrome_trace(_sample_tree())
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("M") == 1
        assert phases.count("X") == 4
        assert phases.count("i") == 1
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["pipeline"]["args"] == {"backend": "rake"}
        assert by_name["oracle.query"]["args"] == {"cache": "miss"}
        # spans nest in time: children start at/after the parent
        assert by_name["lifting"]["ts"] >= by_name["pipeline"]["ts"]

    def test_instant_events_are_thread_scoped(self):
        payload = chrome_trace(_sample_tree())
        (instant,) = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "marker"
        assert instant["s"] == "t"
        assert instant["args"] == {"n": 3}

    def test_trace_id_in_metadata(self):
        payload = chrome_trace(_sample_tree())
        assert payload["otherData"]["trace_id"] == "feedbeef"

    def test_write_is_json_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_tree(), path)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_envelope(self):
        assert validate_chrome_trace({}) == ["missing traceEvents array"]

    def test_flags_empty(self):
        assert "traceEvents is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )

    def test_flags_bad_events(self):
        payload = {"traceEvents": [
            {"ph": "X", "ts": -1, "pid": 1, "tid": 1, "dur": 2},  # no name
            {"name": "a", "ph": "Z", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 0, "pid": 1, "tid": 1},  # no dur
            {"name": "c", "ph": "X", "ts": 0, "pid": "x", "tid": 1, "dur": 1},
        ]}
        problems = validate_chrome_trace(payload)
        assert any("missing name" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert any("dur" in p for p in problems)
        assert any("integer pid" in p for p in problems)

    def test_accepts_generated_output(self):
        assert validate_chrome_trace(chrome_trace(_sample_tree())) == []


class TestFlamegraph:
    def test_stacks_and_self_time(self):
        lines = flamegraph_lines(_sample_tree())
        stacks = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in lines
        )
        assert "pipeline" in stacks
        assert "pipeline;lifting" in stacks
        assert "pipeline;lowering;oracle.query" in stacks
        assert all(weight >= 0 for weight in stacks.values())

    def test_semicolons_in_names_are_escaped(self):
        tr = Tracer()
        with tr.span("a;b"):
            pass
        (line,) = flamegraph_lines(tr.tree())
        assert line.startswith("a:b ")

    def test_write(self, tmp_path):
        path = tmp_path / "flame.txt"
        write_flamegraph(_sample_tree(), path)
        assert len(path.read_text().strip().splitlines()) == 4


class TestTimeline:
    def test_renders_all_spans(self):
        text = trace_timeline(_sample_tree())
        assert "trace feedbeef" in text
        for name in ("pipeline", "lifting", "lowering", "oracle.query"):
            assert name in text

    def test_depth_limit_aggregates(self):
        text = trace_timeline(_sample_tree(), max_depth=1)
        assert "oracle.query" not in text
        assert "(+1 nested)" in text

    def test_empty_tree(self):
        assert "no spans" in trace_timeline({"trace_id": "x", "spans": []})


class TestLogger:
    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        configure(level="info", json_mode=False, stream=None)

    def test_plain_format(self, capsys):
        configure(level="info")
        get_logger("test.plain").info("hello", n=7, s="x")
        err = capsys.readouterr().err
        assert "test.plain: hello" in err
        assert "[n=7 s=x]" in err
        assert "INFO".lower() in err.lower()

    def test_json_format(self, capsys):
        configure(level="info", json_mode=True)
        get_logger("test.json").warning("w", job="j1")
        record = json.loads(capsys.readouterr().err.strip())
        assert record["level"] == "warning"
        assert record["logger"] == "test.json"
        assert record["msg"] == "w"
        assert record["job"] == "j1"
        assert isinstance(record["ts"], float)

    def test_level_filtering(self, capsys):
        configure(level="warning")
        log = get_logger("test.filter")
        log.debug("dropped")
        log.info("dropped too")
        log.error("kept")
        err = capsys.readouterr().err
        assert "dropped" not in err
        assert "kept" in err

    def test_level_case_insensitive(self):
        configure(level="DEBUG")
        assert current_level() == "debug"

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure(level="loud")

    def test_custom_stream(self):
        import io

        buf = io.StringIO()
        configure(level="info", stream=buf)
        Logger("test.stream").info("to-buffer")
        assert "to-buffer" in buf.getvalue()
