"""Trace-context propagation across the worker ladder and the pipeline.

The contract: a traced oracle produces the same *span coverage* no matter
which :class:`ParallelChecker` rung (process / thread / serial) executes
the equivalence checks, and verdicts are never affected by tracing.
Workers record their subtrees under a local tracer sharing the parent's
``trace_id`` and ship them back as plain dicts (see docs/observability.md).
"""

import pytest

from repro import workloads  # noqa: F401 - populate the registry
from repro.ir import builder as B
from repro.pipeline import compile_pipeline
from repro.synthesis.engine import (
    MODE_PROCESS,
    MODE_SERIAL,
    MODE_THREAD,
    ParallelChecker,
    _pure_check,
)
from repro.synthesis.oracle import LAYOUT_INORDER, Oracle
from repro.trace import Tracer
from repro.trace.core import iter_span_dicts
from repro.types import U8, U16
from repro.workloads.base import get


def u8v(offset=0, lanes=8):
    return B.load("in", offset, lanes, U8)


def _spec_and_candidates():
    spec = B.widen(u8v()) * 2
    candidates = [
        B.widen(u8v()) * 3,                              # wrong
        B.shl(B.widen(u8v()), B.broadcast(1, 8, U16)),   # right
        B.widen(u8v()) * 2,                              # right (later)
    ]
    return spec, candidates


def _names(tree):
    return [span["name"] for span, _d in iter_span_dicts(tree)]


def _spans_named(tree, name):
    return [span for span, _d in iter_span_dicts(tree)
            if span["name"] == name]


class TestWorkerLadder:
    """Same span coverage on every rung of process -> thread -> serial."""

    @pytest.mark.parametrize("mode", [MODE_PROCESS, MODE_THREAD])
    def test_pool_modes_ship_worker_subtrees(self, mode):
        tracer = Tracer()
        oracle = Oracle(tracer=tracer)
        checker = ParallelChecker(jobs=2, mode=mode)
        spec, candidates = _spec_and_candidates()
        verdicts = checker.check_batch(oracle, spec, candidates,
                                       LAYOUT_INORDER)
        checker.close()
        assert verdicts == [False, True, True]
        assert checker.fallbacks == 0

        tree = tracer.tree()
        (batch,) = _spans_named(tree, "engine.batch")
        assert batch["attrs"]["n"] == 3
        assert batch["attrs"]["mode"] == mode
        assert batch["attrs"]["dispatched"] == 3
        # each dispatched check came back with its worker subtree grafted
        workers = _spans_named(tree, "engine.worker")
        assert len(workers) == 3
        assert all(w in batch["children"] for w in workers)
        queries = _spans_named(tree, "oracle.query")
        assert len(queries) >= 3
        # "fingerprint" appears when the two equivalent candidates land
        # on one worker (or interleave in thread mode) and the second is
        # answered by the observational-equivalence index — a scheduling
        # accident, not a contract violation
        assert {q["attrs"]["cache"] for q in queries} <= {
            "hit", "miss", "fingerprint"}
        # re-based worker spans stay inside sensible time bounds
        for w in workers:
            assert w["start_s"] <= w["end_s"]

    def test_serial_rung_records_inline(self):
        tracer = Tracer()
        oracle = Oracle(tracer=tracer)
        checker = ParallelChecker(jobs=1)
        assert checker.mode == MODE_SERIAL
        spec, candidates = _spec_and_candidates()
        verdicts = checker.check_batch(oracle, spec, candidates,
                                       LAYOUT_INORDER)
        assert verdicts == [False, True, True]
        tree = tracer.tree()
        # no pool: no batch/worker framing, but the oracle spans are there
        assert _spans_named(tree, "engine.batch") == []
        assert _spans_named(tree, "engine.worker") == []
        queries = _spans_named(tree, "oracle.query")
        assert len(queries) == 3
        assert all(q["attrs"]["verdict"] in (True, False) for q in queries)

    def test_degraded_retry_keeps_verdicts_and_spans(self, monkeypatch):
        class BrokenPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("worker exploded")

        tracer = Tracer()
        oracle = Oracle(tracer=tracer)
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD)
        monkeypatch.setattr(checker, "_pool", lambda: BrokenPool())
        spec, candidates = _spec_and_candidates()
        verdicts = checker.check_batch(oracle, spec, candidates,
                                       LAYOUT_INORDER)
        assert verdicts == [False, True, True]
        assert checker.mode == MODE_SERIAL
        # the abandoned batch span is marked, the serial retry still traced
        batches = _spans_named(tracer.tree(), "engine.batch")
        assert any(b["attrs"].get("degraded_to") == MODE_SERIAL
                   for b in batches)
        assert len(_spans_named(tracer.tree(), "oracle.query")) >= 3

    def test_worker_tracer_shares_trace_id(self):
        spec, candidates = _spec_and_candidates()
        payload = (spec, candidates[1], LAYOUT_INORDER, 0, 0, True,
                   ("abc123", ))
        verdict, spans = _pure_check(payload)
        assert verdict is True
        (worker,) = spans
        assert worker["name"] == "engine.worker"
        assert "pid" in worker["attrs"]
        assert any(c["name"] == "oracle.query" for c in worker["children"])

    def test_untraced_payload_returns_bare_bool(self):
        # back-compat: a six-element payload (no trace context) must keep
        # the original ``bool`` return shape.
        spec, candidates = _spec_and_candidates()
        payload = (spec, candidates[0], LAYOUT_INORDER, 0, 0, True)
        assert _pure_check(payload) is False

    def test_untraced_oracle_records_nothing(self):
        oracle = Oracle()
        checker = ParallelChecker(jobs=2, mode=MODE_THREAD)
        spec, candidates = _spec_and_candidates()
        verdicts = checker.check_batch(oracle, spec, candidates,
                                       LAYOUT_INORDER)
        checker.close()
        assert verdicts == [False, True, True]
        assert oracle.tracer.tree() == {"trace_id": None, "spans": []}


class TestTracedPipeline:
    """A traced end-to-end compile covers every synthesis stage."""

    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer()
        wl = get("mul")
        compiled = compile_pipeline(wl.build(), backend="rake", jobs=2,
                                    tracer=tracer)
        return compiled, tracer.tree()

    def test_span_coverage(self, traced):
        _compiled, tree = traced
        names = set(_names(tree))
        assert {"pipeline.compile", "pipeline.stage", "pipeline.expr",
                "lifting", "lowering", "sketch", "swizzle",
                "oracle.query", "pipeline.verify"} <= names

    def test_root_is_pipeline_compile(self, traced):
        _compiled, tree = traced
        roots = [s["name"] for s in tree["spans"]]
        assert roots == ["pipeline.compile"]
        root = tree["spans"][0]
        assert root["attrs"]["backend"] == "rake"
        assert "optimized" in root["attrs"]

    def test_oracle_queries_have_cache_attrs(self, traced):
        _compiled, tree = traced
        queries = _spans_named(tree, "oracle.query")
        assert queries
        assert {q["attrs"]["cache"] for q in queries} <= {
            "hit", "miss", "fingerprint"
        }
        assert all(q["attrs"]["tag"] in ("full", "lane0") for q in queries)

    def test_worker_subtrees_present_with_jobs(self, traced):
        _compiled, tree = traced
        assert _spans_named(tree, "engine.batch")
        assert _spans_named(tree, "engine.worker")

    def test_tracing_does_not_change_output(self, traced):
        from repro.hvx import program_listing

        compiled, _tree = traced
        wl = get("mul")
        untraced = compile_pipeline(wl.build(), backend="rake", jobs=1)

        def listings(pipeline):
            return [program_listing(ce.program)
                    for cs in pipeline.stages for ce in cs.exprs]

        assert listings(compiled) == listings(untraced)
