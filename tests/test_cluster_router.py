"""The cluster router: sharding, health gating, proxying, id aliasing.

Real sockets end to end: stub-compile :class:`CompileServer` workers
behind a real :class:`ClusterRouter`, driven through the unmodified
:class:`ServiceClient` — the point of the router speaking the worker
wire API is that this client needs no cluster awareness, and these
tests hold it to that.
"""

import threading
import time

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro import faults
from repro.cluster import ClusterRouter
from repro.cluster.router import _Ring
from repro.errors import ServiceError
from repro.service import CompileRequest, CompileServer, ServiceClient
from repro.service.protocol import JOB_DONE
from repro.service.scheduler import CompileResult


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def quick_compile(request, cancel, cache):
    return CompileResult(workload=request.workload, backend=request.backend,
                         total_cycles=1)


@pytest.fixture
def cluster():
    nodes = {
        "node-a": CompileServer(workers=1, quiet=True, node_id="node-a",
                                compile_fn=quick_compile).start(),
        "node-b": CompileServer(workers=1, quiet=True, node_id="node-b",
                                compile_fn=quick_compile).start(),
    }
    router = ClusterRouter(
        {name: server.url for name, server in nodes.items()},
        quiet=True, health_interval_s=30.0,  # probes driven by hand
    ).start()
    yield router, nodes
    router.shutdown()
    for server in nodes.values():
        server.shutdown()


class TestRing:
    def test_identical_keys_share_a_home(self, cluster):
        router, _ = cluster
        homes = {next(iter(router._ring.walk("some-key"))).node_id
                 for _ in range(5)}
        assert len(homes) == 1

    def test_walk_yields_each_node_once(self, cluster):
        router, _ = cluster
        ids = [node.node_id for node in router._ring.walk("k")]
        assert sorted(ids) == ["node-a", "node-b"]

    def test_ring_spreads_keys(self, cluster):
        router, _ = cluster
        homes = {next(iter(router._ring.walk(f"key-{i}"))).node_id
                 for i in range(64)}
        assert homes == {"node-a", "node-b"}  # both sides get work

    def test_ring_is_stable_across_instances(self, cluster):
        router, _ = cluster
        rebuilt = _Ring(router.nodes)
        for i in range(16):
            key = f"key-{i}"
            assert (next(iter(rebuilt.walk(key))).node_id
                    == next(iter(router._ring.walk(key))).node_id)


class TestRouting:
    def test_compile_through_router_matches_worker_api(self, cluster):
        router, _ = cluster
        client = ServiceClient(router.url)
        view = client.compile(CompileRequest(workload="mul"), timeout=20)
        assert view.state == JOB_DONE
        assert view.node_id in ("node-a", "node-b")
        assert view.routed_by == "router"
        assert not view.degraded

    def test_identical_requests_land_on_one_node_and_coalesce(self, cluster):
        router, nodes = cluster
        for server in nodes.values():
            server.scheduler.pause()
        client = ServiceClient(router.url)
        replies = [client.submit(CompileRequest(workload="mul",
                                                idempotency_key=f"key-{i}"))
                   for i in range(3)]
        owners = {r["node_id"] for r in replies}
        assert len(owners) == 1  # sharded by coalescing key
        assert len({r["id"] for r in replies}) == 1  # coalesced there
        assert sum(1 for r in replies if r["coalesced"]) == 2
        for server in nodes.values():
            server.scheduler.resume()
        assert client.wait(replies[0]["id"], timeout=20).state == JOB_DONE

    def test_retried_submission_replays_idempotently(self, cluster):
        router, nodes = cluster
        for server in nodes.values():
            server.scheduler.pause()
        client = ServiceClient(router.url)
        request = CompileRequest(workload="mul", idempotency_key="retry-me")
        first = client.submit(request)
        second = client.submit(request)
        assert second["id"] == first["id"]
        assert second["idempotent"] is True
        assert second["coalesced"] is False
        for server in nodes.values():
            server.scheduler.resume()
        assert client.wait(first["id"], timeout=20).state == JOB_DONE

    def test_unknown_job_404s(self, cluster):
        router, _ = cluster
        client = ServiceClient(router.url)
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("feedface0000")

    def test_cancel_proxies_to_owning_node(self, cluster):
        router, nodes = cluster
        for server in nodes.values():
            server.scheduler.pause()
        client = ServiceClient(router.url)
        submitted = client.submit(CompileRequest(workload="mul"))
        assert client.cancel(submitted["id"]) is True
        view = client.status(submitted["id"])
        assert view.state == "cancelled"
        assert view.id == submitted["id"]

    def test_router_health_reports_membership(self, cluster):
        router, _ = cluster
        client = ServiceClient(router.url)
        health = client.healthz()
        assert health["role"] == "router"
        assert health["eligible_nodes"] == 2
        assert {n["node_id"] for n in health["nodes"]} == {"node-a", "node-b"}

    def test_router_metrics_render(self, cluster):
        router, _ = cluster
        client = ServiceClient(router.url)
        client.compile(CompileRequest(workload="mul"), timeout=20)
        text = client.metrics_text()
        assert "repro_router_forwards_total" in text
        assert client.metrics()["repro_router_nodes"] == 2


class TestHealthGating:
    def test_dead_node_is_probed_down_and_routed_around(self, cluster):
        router, nodes = cluster
        nodes["node-a"].shutdown()
        for _ in range(2):
            router.probe_all()
        health = router.health()
        assert health["eligible_nodes"] == 1
        client = ServiceClient(router.url)
        # Every submission now lands on the survivor, including keys
        # whose ring home was the dead node.
        for workload in ("mul", "add", "dilate3x3"):
            view = client.compile(CompileRequest(workload=workload),
                                  timeout=20)
            assert view.state == JOB_DONE
            assert view.node_id == "node-b"

    def test_one_missed_probe_does_not_down_a_node(self, cluster):
        router, nodes = cluster
        with faults.injected(faults.FaultPlan(rules=[
            faults.FaultRule(site=faults.SITE_WORKER_HEALTH, kind="oserror",
                             on_nth=1, max_fires=1),
        ])):
            router.probe_all()  # node-a's probe fails once
        assert router.health()["eligible_nodes"] == 2

    def test_all_nodes_down_sheds_503_with_retry_after(self, cluster):
        router, nodes = cluster
        for server in nodes.values():
            server.shutdown()
        for _ in range(2):
            router.probe_all()
        client = ServiceClient(router.url)
        with pytest.raises(ServiceError, match="no healthy worker node"):
            client.submit(CompileRequest(workload="mul"),
                          honor_retry_after=False)
        metrics = router.metrics.as_dict()
        assert metrics["repro_router_sheds_total"] >= 1

    def test_injected_forward_fault_walks_the_ring(self, cluster):
        router, _ = cluster
        client = ServiceClient(router.url)
        with faults.injected(faults.FaultPlan(rules=[
            faults.FaultRule(site=faults.SITE_ROUTER_FORWARD, kind="oserror",
                             on_nth=1, max_fires=1),
        ])):
            view = client.compile(CompileRequest(workload="mul"), timeout=20)
        assert view.state == JOB_DONE  # second ring node absorbed it
        metrics = router.metrics.as_dict()
        assert metrics["repro_router_forward_errors_total"] == 1

    def test_recovered_node_is_probed_back_in(self, cluster):
        router, nodes = cluster
        node_a = next(n for n in router.nodes if n.node_id == "node-a")
        node_a.mark_dead()
        router._refresh_eligible_gauge()
        assert router.health()["eligible_nodes"] == 1
        router.probe_all()  # node-a still answers /healthz: back in
        assert router.health()["eligible_nodes"] == 2
