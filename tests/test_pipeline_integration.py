"""End-to-end integration tests: frontend -> selector -> simulator.

The decisive check: for real pipelines, executing the selected HVX
programs produces pixel-identical results to the IR reference, for both
instruction selectors.
"""

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro.pipeline import compile_pipeline
from repro.sim import Image, execute, measure, reference_execute
from repro.workloads.base import get
from repro.types import U16, U8


def images_for(wl, seed=11):
    return {
        spec.name: Image(spec.elem, 256, 24).fill_random(seed + i)
        for i, spec in enumerate(wl.inputs)
    }


def run_both(name, width=256, height=8):
    wl = get(name)
    inputs = images_for(wl)
    rk = compile_pipeline(wl.build(), backend="rake")
    bl = compile_pipeline(wl.build(), backend="baseline")
    out_r = execute(rk, dict(inputs), width, height, wl.scalars)
    out_b = execute(bl, dict(inputs), width, height, wl.scalars)
    ref = reference_execute(rk, dict(inputs), width, height, wl.scalars)
    return wl, rk, bl, out_r, out_b, ref


class TestSobelEndToEnd:
    def test_pixels_match_reference(self):
        wl, rk, bl, out_r, out_b, ref = run_both("sobel")
        key = wl.build().name
        assert out_r[key].pixels() == ref[key].pixels()
        assert out_b[key].pixels() == ref[key].pixels()

    def test_rake_beats_baseline(self):
        wl = get("sobel")
        rk = compile_pipeline(wl.build(), backend="rake")
        bl = compile_pipeline(wl.build(), backend="baseline")
        assert measure(rk).total < measure(bl).total


@pytest.mark.parametrize("name", [
    "box_blur", "dilate3x3", "average_pool", "max_pool", "mul",
])
def test_execution_matches_reference(name):
    wl, rk, bl, out_r, out_b, ref = run_both(name)
    key = wl.build().name
    assert out_r[key].pixels() == ref[key].pixels()
    assert out_b[key].pixels() == out_r[key].pixels()


def test_reduction_pipeline_executes():
    wl, rk, bl, out_r, out_b, ref = run_both("mean", height=4)
    key = "mean"
    assert out_r[key].pixels() == ref[key].pixels()
    assert out_b[key].pixels() == out_r[key].pixels()


def test_scalar_parameters_flow_through():
    wl = get("add")
    inputs = images_for(wl)
    rk = compile_pipeline(wl.build(), backend="rake")
    a = execute(rk, dict(inputs), 256, 4, {"zp_a": 3, "zp_b": 7})
    b = execute(rk, dict(inputs), 256, 4, {"zp_a": 100, "zp_b": 7})
    assert a["add"].pixels() != b["add"].pixels()


def test_compiled_pipeline_reports_stats():
    wl = get("sobel")
    rk = compile_pipeline(wl.build(), backend="rake")
    assert rk.optimized_exprs >= 1
    assert rk.stats.total_queries > 0
    stages = rk.stats.stages
    assert stages["swizzling"].time_s >= 0


def test_verification_is_on_by_default():
    # compile_pipeline re-verifies every selected program; reaching here
    # without ReproError means all programs passed.
    wl = get("camera_pipe")
    compiled = compile_pipeline(wl.build(), backend="baseline")
    assert len(compiled.stages) == 4
