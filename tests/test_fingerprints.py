"""Tests for observational-equivalence pruning.

Two layers under test:

* :mod:`repro.synthesis.fingerprints` — denotation fingerprints must
  only ever *eliminate* oracle queries, never change a verdict: verdicts
  with and without fingerprints agree (property-based), refuted/verified
  classes fan out soundly, and counterexamples outside the fingerprint
  set split stale classes instead of merging inequivalent candidates.
* :mod:`repro.targets.pruning` — precomputed pruned grammars: signature
  invariance, table loading/fallback through ``REPRO_PRUNED_GRAMMAR_DIR``,
  the offline builder's collapse check, and the ``repro prune-grammar``
  CLI subcommand.
"""

import json
import os

import pytest

pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import workloads  # noqa: F401 - populate the registry
from repro.cli import main as cli_main
from repro.ir import builder as B
from repro.pipeline import compile_pipeline
from repro.synthesis import sketch as S
from repro.synthesis.fingerprints import _REFUTED, _VERIFIED
from repro.synthesis.oracle import LAYOUT_INORDER, Oracle
from repro.targets import get_target, pruning
from repro.types import U8, U16
from repro.workloads.base import get, names


def u8v(offset=0, lanes=8):
    return B.load("in", offset, lanes, U8)


def _spec():
    return B.widen(u8v()) * 2


def _selection(compiled) -> list:
    return [repr(ce.program)
            for cs in compiled.stages for ce in cs.exprs]


# ---------------------------------------------------------------------------
# Fingerprint soundness
# ---------------------------------------------------------------------------


class TestFingerprintFanOut:
    def test_verified_class_fans_out_true(self):
        oracle = Oracle()
        spec = _spec()
        shl = B.shl(B.widen(u8v()), B.broadcast(1, 8, U16))
        mul = B.widen(u8v()) * 2
        assert oracle.equivalent(spec, shl, LAYOUT_INORDER) is True
        assert oracle.equivalent(spec, mul, LAYOUT_INORDER) is True
        # the mul form shares the shl form's denotation: one oracle
        # query, one class, one fan-out
        assert oracle.stats.total_queries == 1
        assert oracle.stats.total_fingerprint_hits == 1
        assert oracle.stats.total_classes_formed == 1

    def test_refuted_class_fans_out_false(self):
        oracle = Oracle()
        spec = _spec()
        tripled = B.widen(u8v()) * 3
        summed = B.widen(u8v()) + B.widen(u8v()) + B.widen(u8v())
        assert oracle.equivalent(spec, tripled, LAYOUT_INORDER) is False
        assert oracle.equivalent(spec, summed, LAYOUT_INORDER) is False
        assert oracle.stats.total_queries == 1
        assert oracle.stats.total_fingerprint_hits == 1

    def test_fingerprint_verdicts_recorded_in_cache(self):
        # Fan-out verdicts still land in the verdict cache: a warm run
        # against the same cache is pure cache hits and never needs the
        # fingerprint index (the pre-refactor disk-store contract).
        oracle = Oracle()
        spec = _spec()
        shl = B.shl(B.widen(u8v()), B.broadcast(1, 8, U16))
        mul = B.widen(u8v()) * 2
        oracle.equivalent(spec, shl, LAYOUT_INORDER)
        oracle.equivalent(spec, mul, LAYOUT_INORDER)
        warm = Oracle(cache=oracle.cache)
        assert warm.equivalent(spec, mul, LAYOUT_INORDER) is True
        assert warm.stats.total_cache_hits == 1
        assert warm.stats.total_fingerprint_hits == 0

    def test_disabled_fingerprints_query_every_candidate(self):
        oracle = Oracle(fingerprints=False)
        spec = _spec()
        oracle.equivalent(
            spec, B.shl(B.widen(u8v()), B.broadcast(1, 8, U16)),
            LAYOUT_INORDER)
        oracle.equivalent(spec, B.widen(u8v()) * 2, LAYOUT_INORDER)
        assert oracle.stats.total_queries == 2
        assert oracle.stats.total_fingerprint_hits == 0


@st.composite
def weighted_sums(draw):
    """Small widening stencil sums — dense in denotation collisions."""
    n_terms = draw(st.integers(1, 3))
    acc = None
    for _ in range(n_terms):
        offset = draw(st.integers(0, 2))
        weight = draw(st.integers(1, 3))
        term = B.widen(u8v(offset)) * weight
        acc = term if acc is None else acc + term
    return acc


#: shared across hypothesis examples so equivalence classes accumulate
_FP_ORACLE = Oracle()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(weighted_sums())
def test_fingerprint_verdicts_match_plain_oracle(candidate):
    """Fingerprint-equal implies verdict-equal: a class-resolved verdict
    always agrees with a fresh fingerprint-free oracle."""
    spec = B.widen(u8v(0)) * 2 + B.widen(u8v(1))
    fanned = _FP_ORACLE.equivalent(spec, candidate, LAYOUT_INORDER)
    plain = Oracle(fingerprints=False)
    assert fanned == plain.equivalent(spec, candidate, LAYOUT_INORDER)


# ---------------------------------------------------------------------------
# Class splits
# ---------------------------------------------------------------------------


def _tampered_digests(state, outside_env, junk=b"\x00" * 16):
    """Digests agreeing with the spec everywhere except one environment
    outside the fingerprint set — the shape of a candidate only a
    randomized verification round can distinguish."""
    assert outside_env not in state.D
    digests = dict(state.spec_digests)
    digests[outside_env] = junk
    return digests


class TestClassSplits:
    def test_verified_class_mismatch_outside_d_splits(self):
        """A member whose only disagreement lies outside D must be
        refuted and split the class — never fan out True."""
        oracle = Oracle()
        fp = oracle._fingerprinter()
        spec = _spec()
        right = B.shl(B.widen(u8v()), B.broadcast(1, 8, U16))
        assert oracle.equivalent(spec, right, LAYOUT_INORDER) is True
        state = fp._state(spec)
        assert list(state.classes.values()) == [_VERIFIED]
        outside = [i for i in range(state.n_envs) if i not in state.D]
        assert outside, "bank must extend past the fingerprint set"

        wrong = B.widen(u8v()) * 3
        state.cand_digests[(wrong, LAYOUT_INORDER)] = _tampered_digests(
            state, outside[0])
        # counters attribute to the innermost active stage, as in a real
        # compile where resolve/learn always run inside one
        with oracle.stats.stage("swizzling"):
            assert fp.resolve(spec, wrong, LAYOUT_INORDER) is False
        assert oracle.stats.total_class_splits == 1
        assert outside[0] in state.D
        assert state.classes == {}  # stale classes invalidated

        # after the split the old class is gone: the correct candidate
        # resolves to "ask the oracle", not to a stale verdict
        assert fp.resolve(spec, right, LAYOUT_INORDER) is None

    def test_refutation_outside_d_extends_d_before_recording(self):
        """learn(False) with no refuting env in D must split first, so
        the refuted class can never capture spec-equivalent members."""
        oracle = Oracle()
        fp = oracle._fingerprinter()
        spec = _spec()
        state = fp._state(spec)
        outside = [i for i in range(state.n_envs) if i not in state.D]

        wrong = B.widen(u8v()) * 3
        state.cand_digests[(wrong, LAYOUT_INORDER)] = _tampered_digests(
            state, outside[0])
        with oracle.stats.stage("swizzling"):
            fp.learn(spec, wrong, LAYOUT_INORDER, False)
        assert oracle.stats.total_class_splits == 1
        assert outside[0] in state.D
        assert list(state.classes.values()) == [_REFUTED]

        # a genuinely equivalent candidate keys differently at the new
        # environment: it must not inherit the refuted verdict
        right = B.shl(B.widen(u8v()), B.broadcast(1, 8, U16))
        assert fp.resolve(spec, right, LAYOUT_INORDER) is not False

    def test_full_digest_collision_is_never_recorded(self):
        """A refutation invisible to every bank digest (a hash collision
        in miniature) must not form a class at all."""
        oracle = Oracle()
        fp = oracle._fingerprinter()
        spec = _spec()
        state = fp._state(spec)
        wrong = B.widen(u8v()) * 3
        state.cand_digests[(wrong, LAYOUT_INORDER)] = dict(state.spec_digests)
        fp.learn(spec, wrong, LAYOUT_INORDER, False)
        assert state.classes == {}
        assert oracle.stats.total_class_splits == 0


# ---------------------------------------------------------------------------
# --no-fingerprints differential
# ---------------------------------------------------------------------------


DIFF_WORKLOADS = ["mul", "dilate3x3", "l2norm"]


@pytest.mark.parametrize("target", ["hvx", "neon"])
@pytest.mark.parametrize("name", DIFF_WORKLOADS)
def test_no_fingerprints_identical_selection(name, target):
    wl = get(name)
    with_fp = compile_pipeline(wl.build(), backend="rake", target=target)
    without = compile_pipeline(wl.build(), backend="rake", target=target,
                               fingerprints=False)
    assert _selection(with_fp) == _selection(without)
    assert with_fp.stats.total_queries <= without.stats.total_queries
    assert without.stats.total_fingerprint_hits == 0


@pytest.mark.slow
@pytest.mark.parametrize("target", ["hvx", "neon"])
def test_no_fingerprints_full_suite(target):
    """Nightly: every registered workload selects identically with
    fingerprints on and off, on both targets."""
    for name in names():
        wl = get(name)
        with_fp = compile_pipeline(wl.build(), backend="rake", target=target)
        without = compile_pipeline(wl.build(), backend="rake", target=target,
                                   fingerprints=False)
        assert _selection(with_fp) == _selection(without), name


# ---------------------------------------------------------------------------
# Pruned grammars
# ---------------------------------------------------------------------------


@pytest.fixture
def pruned_dir(tmp_path):
    """Point the pruned-grammar loader at a fresh directory (masking the
    shipped data files) and restore + invalidate afterwards."""
    old = os.environ.get(pruning.ENV_DIR)
    os.environ[pruning.ENV_DIR] = str(tmp_path)
    pruning.invalidate()
    try:
        yield tmp_path
    finally:
        if old is None:
            os.environ.pop(pruning.ENV_DIR, None)
        else:
            os.environ[pruning.ENV_DIR] = old
        pruning.invalidate()


def _unaligned_window():
    return S.AbstractWindow("input", 1, 128, U8, 1)


def _write_table(path, target_name, signatures, version=pruning.DATA_VERSION):
    payload = {"version": version, "target": target_name,
               "signatures": signatures}
    path.write_text(json.dumps(payload))


class TestSignatures:
    def test_invariant_under_rename_and_translation(self):
        ph = _unaligned_window()
        moved = S.AbstractWindow("other", 1 + 5 * 128, 128, U8, 1)
        assert pruning.signature_of(ph) == pruning.signature_of(moved)
        canon = pruning.canonical_placeholder(ph)
        assert pruning.signature_of(canon) == pruning.signature_of(ph)

    def test_residue_distinguishes(self):
        a = S.AbstractWindow("input", 1, 128, U8, 1)
        b = S.AbstractWindow("input", 2, 128, U8, 1)
        assert pruning.signature_of(a) != pruning.signature_of(b)

    def test_rows_shared_buffer_flag(self):
        shared = S.AbstractRows("x", 0, "x", 128, 128, U8, 1)
        split = S.AbstractRows("x", 0, "y", 128, 128, U8, 1)
        assert pruning.signature_of(shared) != pruning.signature_of(split)

    def test_abstract_swizzle_is_unprunable(self):
        ph = S.AbstractSwizzle(u8v(), S.SWIZZLE_IDENTITY)
        assert pruning.signature_of(ph) is None
        assert pruning.canonical_placeholder(ph) is None

    def test_canonical_realizations_match_shape(self):
        """The canonical placeholder enumerates the same number of
        realizations with the same costs — the property the offline
        table relies on to transfer keep-lists across call sites."""
        tgt = get_target("hvx")
        ph = S.AbstractWindow("input", 1 + 3 * 128, 128, U8, 1)
        canon = pruning.canonical_placeholder(ph)
        costs = [tgt.cost_of(r).key for r in tgt.realizations(ph)]
        canon_costs = [tgt.cost_of(r).key for r in tgt.realizations(canon)]
        assert costs == canon_costs


class TestTableLoading:
    def test_missing_table_falls_back(self, pruned_dir):
        assert pruning.load_table("hvx") is None
        ph = _unaligned_window()
        options = list(get_target("hvx").realizations(ph))
        kept, pruned = pruning.pruned_options("hvx", ph, options)
        assert kept == options and pruned is False

    def test_custom_table_prunes(self, pruned_dir):
        tgt = get_target("hvx")
        ph = _unaligned_window()
        options = list(tgt.realizations(ph))
        assert len(options) >= 2  # vmemu vs. align-splice
        sig = pruning.signature_of(ph)
        _write_table(pruned_dir / "pruned_hvx.json", "hvx",
                     {sig: {"total": len(options), "keep": [0]}})
        pruning.invalidate()
        kept, pruned = pruning.pruned_options("hvx", ph, options)
        assert pruned is True and kept == [options[0]]

    def test_stale_total_falls_back(self, pruned_dir):
        tgt = get_target("hvx")
        ph = _unaligned_window()
        options = list(tgt.realizations(ph))
        sig = pruning.signature_of(ph)
        _write_table(pruned_dir / "pruned_hvx.json", "hvx",
                     {sig: {"total": len(options) + 1, "keep": [0]}})
        pruning.invalidate()
        kept, pruned = pruning.pruned_options("hvx", ph, options)
        assert kept == options and pruned is False

    def test_malformed_keep_falls_back(self, pruned_dir):
        tgt = get_target("hvx")
        ph = _unaligned_window()
        options = list(tgt.realizations(ph))
        sig = pruning.signature_of(ph)
        for keep in ([], [len(options)], ["0"]):
            _write_table(pruned_dir / "pruned_hvx.json", "hvx",
                         {sig: {"total": len(options), "keep": keep}})
            pruning.invalidate()
            kept, pruned = pruning.pruned_options("hvx", ph, options)
            assert kept == options and pruned is False

    def test_version_mismatch_ignored(self, pruned_dir):
        _write_table(pruned_dir / "pruned_hvx.json", "hvx", {}, version=99)
        pruning.invalidate()
        assert pruning.load_table("hvx") is None

    def test_corrupt_json_ignored(self, pruned_dir):
        (pruned_dir / "pruned_hvx.json").write_text("{not json")
        pruning.invalidate()
        assert pruning.load_table("hvx") is None


class TestOfflineBuilder:
    def test_build_entry_collapses_unaligned_window(self):
        tgt = get_target("hvx")
        ph = pruning.canonical_placeholder(_unaligned_window())
        options = list(tgt.realizations(ph))
        entry = pruning.build_entry(tgt, ph)
        assert entry is not None
        assert entry["total"] == len(options)
        assert len(entry["keep"]) == 1
        assert 0 <= entry["keep"][0] < len(options)

    def test_build_entry_single_realization_is_none(self):
        tgt = get_target("hvx")
        aligned = S.AbstractWindow("b0", 0, 128, U8, 1)
        if len(list(tgt.realizations(aligned))) <= 1:
            assert pruning.build_entry(tgt, aligned) is None

    def test_deleting_tables_preserves_selection(self, pruned_dir):
        """The acceptance contract: with the data files masked, the
        compile falls back to full enumeration and selects the exact
        same programs (just without the pruned-grammar savings)."""
        wl = get("dilate3x3")
        masked = compile_pipeline(wl.build(), backend="rake")
        assert masked.stats.total_pruned_grammar_hits == 0
        os.environ.pop(pruning.ENV_DIR, None)
        pruning.invalidate()
        shipped = compile_pipeline(wl.build(), backend="rake")
        assert shipped.stats.total_pruned_grammar_hits > 0
        assert _selection(masked) == _selection(shipped)


class TestPruneGrammarCli:
    def test_prune_grammar_writes_loadable_table(self, tmp_path):
        rc = cli_main(["prune-grammar", "--target", "hvx",
                       "--out", str(tmp_path), "--workloads", "mul"])
        assert rc == 0
        path = tmp_path / "pruned_hvx.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["version"] == pruning.DATA_VERSION
        assert payload["target"] == "hvx"
        assert isinstance(payload["signatures"], dict)
        for entry in payload["signatures"].values():
            assert entry["total"] > len(entry["keep"]) >= 1

    def test_unknown_workload_rejected(self, tmp_path, capsys):
        rc = cli_main(["prune-grammar", "--target", "hvx",
                       "--out", str(tmp_path),
                       "--workloads", "definitely-not-a-workload"])
        assert rc != 0
