"""Tests for the memoization layer (:mod:`repro.synthesis.engine`).

Covers canonical query keying (rename-insensitive, layout/seed/tag
sensitive), the append-only JSONL disk store, two-level verdict caching,
and counterexample-bank persistence across Oracle instances.
"""

import json

import pytest

from repro.hvx import isa as H
from repro.ir import builder as B
from repro.synthesis import valuation
from repro.synthesis.engine import (
    CACHE_DIR_ENV,
    CACHE_FILE_NAME,
    DiskStore,
    OracleCache,
    default_cache_dir,
    query_key,
    spec_key,
)
from repro.synthesis.oracle import LAYOUT_DEINTERLEAVED, LAYOUT_INORDER, Oracle
from repro.types import U8, U16


def u8v(buffer="in", offset=0, lanes=8):
    return B.load(buffer, offset, lanes, U8)


class TestQueryKey:
    def test_deterministic(self):
        spec = B.widen(u8v()) * 2
        cand = B.shl(B.widen(u8v()), B.broadcast(1, 8, U16))
        assert query_key(spec, cand, LAYOUT_INORDER) == \
            query_key(spec, cand, LAYOUT_INORDER)

    def test_rename_insensitive(self):
        # The same query over a renamed buffer must share one cache entry.
        k1 = query_key(B.widen(u8v("in")) * 2, B.widen(u8v("in")) * 2,
                       LAYOUT_INORDER)
        k2 = query_key(B.widen(u8v("input")) * 2, B.widen(u8v("input")) * 2,
                       LAYOUT_INORDER)
        assert k1 == k2

    def test_rename_map_shared_with_candidate(self):
        # A candidate reading a *different* buffer than its spec is a
        # different query from one reading the same buffer.
        spec = u8v("a")
        same = query_key(spec, u8v("a"), LAYOUT_INORDER)
        other = query_key(spec, u8v("b"), LAYOUT_INORDER)
        assert same != other

    def test_layout_sensitive(self):
        spec, cand = u8v(), u8v()
        assert query_key(spec, cand, LAYOUT_INORDER) != \
            query_key(spec, cand, LAYOUT_DEINTERLEAVED)

    def test_seed_and_rounds_sensitive(self):
        spec, cand = u8v(), u8v()
        base = query_key(spec, cand, LAYOUT_INORDER, seed=0, rounds=4)
        assert base != query_key(spec, cand, LAYOUT_INORDER, seed=1, rounds=4)
        assert base != query_key(spec, cand, LAYOUT_INORDER, seed=0, rounds=5)

    def test_tag_separates_full_from_lane0(self):
        spec, cand = u8v(), u8v()
        assert query_key(spec, cand, LAYOUT_INORDER, tag="full") != \
            query_key(spec, cand, LAYOUT_INORDER, tag="lane0")

    def test_expression_kind_matters(self):
        # An IR load and the HVX load denote the same lanes but are
        # different candidates (different cost, different printing).
        spec = u8v()
        assert query_key(spec, u8v(), LAYOUT_INORDER) != \
            query_key(spec, H.HvxLoad("in", 0, 8, U8), LAYOUT_INORDER)

    def test_oracle_key_matches_module_key(self):
        spec = B.widen(u8v()) * 2
        cand = B.widen(u8v()) * 3
        oracle = Oracle(seed=7, extra_random_rounds=2)
        assert oracle.query_key(spec, cand, LAYOUT_INORDER) == \
            query_key(spec, cand, LAYOUT_INORDER, seed=7, rounds=2)

    def test_spec_key_rename_insensitive(self):
        assert spec_key(B.widen(u8v("x")) * 2) == \
            spec_key(B.widen(u8v("y")) * 2)


class TestDiskStore:
    def test_missing_file_is_empty(self, tmp_path):
        store = DiskStore(tmp_path / "oracle.jsonl")
        assert len(store) == 0
        assert store.get_verdict("nope") is None
        assert store.counterexample_indices("nope") == []

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        store = DiskStore(path)
        store.put_verdict("k1", True)
        store.put_verdict("k2", False)
        store.add_counterexample("s1", 3)
        store.add_counterexample("s1", 5)
        store.close()

        reloaded = DiskStore(path)
        assert reloaded.get_verdict("k1") is True
        assert reloaded.get_verdict("k2") is False
        assert reloaded.counterexample_indices("s1") == [3, 5]

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        path.write_text(
            json.dumps({"t": "v", "k": "good", "v": 1}) + "\n"
            + "{not json at all\n"
            + json.dumps(["wrong", "shape"]) + "\n"
            + json.dumps({"t": "??", "k": "x"}) + "\n"
            + json.dumps({"t": "c", "k": "s", "i": 2}) + "\n"
            + '{"t": "v", "k": "trunc'  # interrupted final write
        )
        store = DiskStore(path)
        assert store.get_verdict("good") is True
        assert store.counterexample_indices("s") == [2]
        assert len(store) == 1

    def test_writes_are_buffered_until_flush(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        store = DiskStore(path)
        store.put_verdict("k", True)
        assert not path.exists()  # buffered
        store.flush()
        assert path.exists()
        rec = json.loads(path.read_text())
        crc = rec.pop("crc")
        assert isinstance(crc, int)  # every new record is checksummed
        assert rec == {"t": "v", "k": "k", "v": 1}

    def test_flush_every_threshold(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        store = DiskStore(path)
        for i in range(DiskStore.FLUSH_EVERY):
            store.put_verdict(f"k{i}", i % 2 == 0)
        # the threshold write happened without an explicit flush
        assert len(path.read_text().splitlines()) == DiskStore.FLUSH_EVERY

    def test_duplicates_not_rewritten(self, tmp_path):
        path = tmp_path / "oracle.jsonl"
        store = DiskStore(path)
        store.put_verdict("k", True)
        store.put_verdict("k", True)
        store.add_counterexample("s", 1)
        store.add_counterexample("s", 1)
        store.close()
        assert len(path.read_text().splitlines()) == 2


class TestOracleMemoization:
    def test_second_query_hits_cache(self):
        oracle = Oracle()
        spec = B.widen(u8v()) * 2
        cand = B.shl(B.widen(u8v()), B.broadcast(1, 8, U16))
        assert oracle.equivalent(spec, cand)
        assert oracle.equivalent(spec, cand)
        assert oracle.stats.total_cache_hits == 1
        assert oracle.stats.total_cache_misses == 1

    def test_negative_verdicts_cached(self):
        oracle = Oracle()
        spec = B.widen(u8v()) * 2
        wrong = B.widen(u8v()) * 3
        assert not oracle.equivalent(spec, wrong)
        assert not oracle.equivalent(spec, wrong)
        assert oracle.stats.total_cache_hits == 1

    def test_lane0_queries_cached_separately(self):
        oracle = Oracle()
        spec, cand = u8v(), u8v()
        assert oracle.equivalent(spec, cand)
        assert oracle.equivalent_lane0(spec, cand)  # full hit can't answer
        assert oracle.stats.total_cache_misses == 2
        assert oracle.equivalent_lane0(spec, cand)
        assert oracle.stats.total_cache_hits == 1

    def test_out_of_stage_queries_attributed_to_verify(self):
        oracle = Oracle()
        oracle.equivalent(u8v(), u8v())
        assert oracle.stats.stages["verify"].queries == 1
        with oracle.stats.stage("lifting"):
            oracle.equivalent(u8v(), u8v())
        assert oracle.stats.stages["lifting"].queries == 1
        assert oracle.stats.stages["verify"].queries == 1

    def test_verdicts_persist_across_oracles(self, tmp_path):
        spec = B.widen(u8v()) * 2
        cand = B.shl(B.widen(u8v()), B.broadcast(1, 8, U16))

        first = Oracle(cache=OracleCache.with_disk(tmp_path))
        assert first.equivalent(spec, cand)
        first.cache.flush()

        second = Oracle(cache=OracleCache.with_disk(tmp_path))
        assert second.equivalent(spec, cand)
        assert second.stats.total_cache_hits == 1
        assert second.stats.total_cache_misses == 0

    def test_cached_verdict_needs_no_evaluation(self, tmp_path, monkeypatch):
        # A warm store answers without building a valuation bank at all.
        spec = B.widen(u8v()) * 2
        wrong = B.widen(u8v()) * 3
        warm = Oracle(cache=OracleCache.with_disk(tmp_path))
        assert not warm.equivalent(spec, wrong)
        warm.cache.flush()

        def boom(*args, **kwargs):
            raise AssertionError("bank should not be rebuilt on a cache hit")

        monkeypatch.setattr(valuation, "environment_bank", boom)
        cold = Oracle(cache=OracleCache.with_disk(tmp_path))
        assert not cold.equivalent(spec, wrong)

    def test_counterexamples_persist_across_oracles(self, tmp_path):
        spec = B.widen(u8v()) * 2
        wrong = B.widen(u8v()) * 3

        first = Oracle(cache=OracleCache.with_disk(tmp_path))
        assert not first.equivalent(spec, wrong)
        assert first.counterexamples_for(spec)
        first.cache.flush()

        second = Oracle(cache=OracleCache.with_disk(tmp_path))
        replay = second.counterexamples_for(spec)
        assert replay
        # the persisted index resolves to the same refuting environment
        assert [i for i, _env in replay] == \
            [i for i, _env in first.counterexamples_for(spec)]

    def test_rename_shares_cache_entry(self):
        oracle = Oracle()
        assert oracle.equivalent(B.widen(u8v("a")) * 2, B.widen(u8v("a")) * 2)
        assert oracle.equivalent(B.widen(u8v("b")) * 2, B.widen(u8v("b")) * 2)
        assert oracle.stats.total_cache_hits == 1


class TestConcurrentWriters:
    """The service shares one store across workers and cache dirs across
    processes; appends must interleave at line granularity."""

    def test_threads_sharing_one_store(self, tmp_path):
        import threading

        path = tmp_path / "oracle.jsonl"
        store = DiskStore(path)
        barrier = threading.Barrier(8)

        def writer(t):
            barrier.wait()
            for i in range(200):
                store.put_verdict(f"k{t}-{i}", (t + i) % 2 == 0)
                if i % 50 == 0:
                    store.flush()

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(8)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        store.close()

        lines = path.read_text().splitlines()
        assert len(lines) == 8 * 200  # no duplicates, no losses
        for line in lines:
            rec = json.loads(line)  # raises if any line tore
            assert rec["t"] == "v"
        reloaded = DiskStore(path)
        assert len(reloaded) == 8 * 200
        assert reloaded.get_verdict("k3-101") is ((3 + 101) % 2 == 0)

    def test_two_stores_appending_to_one_file(self, tmp_path):
        # Two *instances* on one path model two processes sharing a cache
        # dir: each is blind to the other's in-memory state, so both may
        # prove the same verdict — the duplicate must be idempotent.
        path = tmp_path / "oracle.jsonl"
        first, second = DiskStore(path), DiskStore(path)
        first.put_verdict("shared", True)
        second.put_verdict("shared", True)
        first.put_verdict("first-only", False)
        second.put_verdict("second-only", True)
        second.add_counterexample("s", 7)
        first.flush()
        second.flush()

        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)
        merged = DiskStore(path)
        assert merged.get_verdict("shared") is True
        assert merged.get_verdict("first-only") is False
        assert merged.get_verdict("second-only") is True
        assert merged.counterexample_indices("s") == [7]
        assert len(merged) == 3

    def test_interleaved_flushes_from_competing_threads(self, tmp_path):
        import threading

        path = tmp_path / "oracle.jsonl"
        barrier = threading.Barrier(4)

        def hammer(t):
            own = DiskStore(path)
            barrier.wait()
            for i in range(100):
                own.put_verdict(f"w{t}-{i}", True)
                own.flush()  # every record races with the other writers

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        keys = set()
        for line in path.read_text().splitlines():
            rec = json.loads(line)  # a torn write would fail here
            keys.add(rec["k"])
        assert keys == {f"w{t}-{i}" for t in range(4) for i in range(100)}


class TestCacheDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        path = default_cache_dir()
        assert path.name == "repro-rake"
        assert path.parent.name == ".cache"

    def test_with_disk_places_store_in_dir(self, tmp_path):
        cache = OracleCache.with_disk(tmp_path)
        cache.record("k", True)
        cache.flush()
        assert (tmp_path / CACHE_FILE_NAME).exists()

    def test_with_disk_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        cache = OracleCache.with_disk()
        assert cache.store.path == tmp_path / CACHE_FILE_NAME
