"""Unit tests for the fault-injection layer itself (`repro.faults`).

Rule triggers, plan determinism, JSON round-trips, the ambient
activate/fire API, listeners, and the retry/breaker primitives the
hardening layers are built on.
"""

import json
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import faults
from repro.errors import ReproError
from repro.faults import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    RetryPolicy,
)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="engine.batch", kind="meteor")

    def test_missing_site_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="", kind="error")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fields"):
            FaultRule.from_dict({"site": "s", "kind": "error", "zap": 1})

    def test_on_nth_fires_exactly_once(self):
        plan = FaultPlan(rules=[
            FaultRule(site="s", kind="error", on_nth=3),
        ])
        fired = [plan.decide("s") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_every_fires_periodically(self):
        plan = FaultPlan(rules=[FaultRule(site="s", kind="error", every=2)])
        fired = [plan.decide("s") is not None for _ in range(6)]
        assert fired == [False, True, False, True, False, True]

    def test_max_fires_caps_injections(self):
        plan = FaultPlan(rules=[
            FaultRule(site="s", kind="error", every=1, max_fires=2),
        ])
        fired = [plan.decide("s") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probability_trigger_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(
                rules=[FaultRule(site="s", kind="error", p=0.5)], seed=seed
            )
            return [plan.decide("s") is not None for _ in range(64)]

        assert run(42) == run(42)
        assert run(42) != run(43)  # astronomically unlikely to collide
        assert any(run(42))
        assert not all(run(42))


class TestFaultPlan:
    def test_sites_count_independently(self):
        plan = FaultPlan(rules=[FaultRule(site="b", kind="error", on_nth=1)])
        # Calls to site "a" must not advance site "b"'s counter.
        for _ in range(5):
            assert plan.decide("a") is None
        assert plan.decide("b") is not None
        assert plan.calls("a") == 5
        assert plan.calls("b") == 1

    def test_injection_trace_has_sequence_numbers_not_timestamps(self):
        plan = FaultPlan(rules=[FaultRule(site="s", kind="error", every=1)])
        plan.decide("s")
        plan.decide("s")
        assert plan.trace() == [
            {"seq": 1, "site": "s", "kind": "error", "call": 1},
            {"seq": 2, "site": "s", "kind": "error", "call": 2},
        ]
        assert plan.injected_total() == 2
        assert plan.by_site() == {"s": 2}

    def test_same_seed_same_trace(self):
        def trace(seed):
            plan = FaultPlan(rules=[
                FaultRule(site="a", kind="error", p=0.3),
                FaultRule(site="b", kind="latency", every=3),
            ], seed=seed)
            for _ in range(20):
                plan.decide("a")
                plan.decide("b")
            return plan.trace()

        assert trace(5) == trace(5)

    def test_reset_replays_from_zero(self):
        plan = FaultPlan(rules=[FaultRule(site="s", kind="error", on_nth=2)])
        first = [plan.decide("s") is not None for _ in range(3)]
        plan.reset()
        assert [plan.decide("s") is not None for _ in range(3)] == first

    def test_json_round_trip(self):
        plan = FaultPlan(name="chaos", seed=9, rules=[
            FaultRule(site="cache.flush", kind="torn_write", every=2),
            FaultRule(site="oracle.query", kind="latency",
                      p=0.1, latency_s=0.5, max_fires=3),
        ])
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()
        assert clone.name == "chaos" and clone.seed == 9

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ValueError):
            FaultPlan.from_dict(["not", "a", "dict"])


class TestAmbientApi:
    def test_fire_without_plan_is_a_noop(self):
        assert faults.fire("anything") is None

    def test_error_kind_raises_untyped(self):
        faults.activate(FaultPlan(rules=[
            FaultRule(site="s", kind="error", every=1, message="boom"),
        ]))
        with pytest.raises(InjectedFaultError, match="boom"):
            faults.fire("s")
        # The whole point: injected crashes exercise the *untyped* paths.
        assert not issubclass(InjectedFaultError, ReproError)

    def test_crash_kind_raises_broken_pool(self):
        faults.activate(FaultPlan(rules=[
            FaultRule(site="s", kind="crash", every=1),
        ]))
        with pytest.raises(BrokenProcessPool):
            faults.fire("s")

    def test_oserror_kind_raises_oserror(self):
        faults.activate(FaultPlan(rules=[
            FaultRule(site="s", kind="oserror", every=1),
        ]))
        with pytest.raises(OSError):
            faults.fire("s")

    def test_latency_kind_sleeps_and_returns(self):
        faults.activate(FaultPlan(rules=[
            FaultRule(site="s", kind="latency", every=1, latency_s=0.02),
        ]))
        t0 = time.monotonic()
        rule = faults.fire("s")
        assert rule is not None and rule.kind == faults.KIND_LATENCY
        assert time.monotonic() - t0 >= 0.015

    def test_corrupt_truncates_payload_on_torn_write(self):
        faults.activate(FaultPlan(rules=[
            FaultRule(site="s", kind="torn_write", every=1),
        ]))
        payload = b"x" * 90
        torn = faults.corrupt("s", payload)
        assert len(torn) < len(payload)
        assert payload.startswith(torn)

    def test_corrupt_passthrough_without_injection(self):
        assert faults.corrupt("s", b"abc") == b"abc"

    def test_injected_context_restores_previous_plan(self):
        outer = faults.activate(FaultPlan(name="outer"))
        with faults.injected(FaultPlan(name="inner")) as plan:
            assert faults.active_plan() is plan
        assert faults.active_plan() is outer

    def test_fire_records_trace_event(self):
        class StubTracer:
            events: list = []

            def event(self, name, **attrs):
                self.events.append((name, attrs))

        faults.activate(FaultPlan(rules=[
            FaultRule(site="s", kind="latency", every=1),
        ]))
        tracer = StubTracer()
        faults.fire("s", tracer=tracer)
        assert tracer.events == [
            ("fault.injected", {"site": "s", "kind": "latency"}),
        ]

    def test_listeners_observe_injections(self):
        seen = []
        faults.add_listener(seen.append)
        try:
            with faults.injected(FaultPlan(rules=[
                FaultRule(site="s", kind="latency", every=1),
            ])):
                faults.fire("s")
        finally:
            faults.remove_listener(seen.append)
        assert [r["site"] for r in seen] == ["s"]

    def test_broken_listener_never_amplifies_a_fault(self):
        def bad(record):
            raise RuntimeError("listener bug")

        faults.add_listener(bad)
        try:
            with faults.injected(FaultPlan(rules=[
                FaultRule(site="s", kind="latency", every=1),
            ])):
                assert faults.fire("s") is not None
        finally:
            faults.remove_listener(bad)


class TestLoadPlan:
    def test_builtin_names(self):
        for name in ("worker-crash", "torn-cache", "slow-oracle",
                     "socket-reset"):
            plan = faults.load_plan(name)
            assert plan.name == name and plan.rules

    def test_builtins_are_fresh_instances(self):
        a = faults.load_plan("worker-crash")
        a.decide(faults.SITE_ENGINE_BATCH)
        assert faults.load_plan("worker-crash").calls(
            faults.SITE_ENGINE_BATCH) == 0

    def test_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 3,
            "rules": [{"site": "oracle.query", "kind": "latency",
                       "every": 2, "latency_s": 0.1}],
        }))
        plan = faults.load_plan(str(path))
        assert plan.seed == 3 and plan.rules[0].every == 2

    def test_unknown_source_is_a_value_error(self):
        with pytest.raises(ValueError, match="neither a built-in"):
            faults.load_plan("no-such-plan")


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(attempts=5, base_s=0.1, factor=2.0,
                             max_s=0.5, jitter=0.0)
        assert [policy.delay(a) for a in range(5)] == \
            [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(attempts=3, base_s=0.1, jitter=0.5, seed=1)
        b = RetryPolicy(attempts=3, base_s=0.1, jitter=0.5, seed=1)
        assert [a.delay(i) for i in range(3)] == \
            [b.delay(i) for i in range(3)]

    def test_run_retries_then_succeeds(self):
        calls = []
        policy = RetryPolicy(attempts=2, base_s=0.0)

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert len(calls) == 3

    def test_run_exhausts_budget_and_reraises(self):
        policy = RetryPolicy(attempts=1, base_s=0.0)
        with pytest.raises(RuntimeError):
            policy.run(lambda: (_ for _ in ()).throw(RuntimeError("perm")))


class TestCircuitBreaker:
    def make(self, threshold=2, cooldown=10.0):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            threshold=threshold, cooldown_s=cooldown,
            clock=lambda: clock["t"],
        )
        return breaker, clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(10.0)

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_admits_one_probe(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock["t"] = 5.0
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()        # wins the probe slot
        assert not breaker.allow()    # slot taken
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock["t"] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.retry_after_s() == pytest.approx(5.0)
        assert breaker.trips == 2

    def test_release_probe_frees_the_slot(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock["t"] = 5.0
        assert breaker.allow()
        assert not breaker.allow()
        breaker.release_probe()  # probe was cancelled / timed out
        assert breaker.allow()

    def test_state_changes_announced(self):
        states = []
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0,
                                 clock=lambda: 100.0,
                                 on_change=states.append)
        breaker.record_failure()
        breaker.record_success()
        assert states == [BREAKER_OPEN, BREAKER_CLOSED]

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0.0)
