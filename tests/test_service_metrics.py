"""Direct unit tests for the service metrics registry.

Pins the pieces the service tests only exercise indirectly: the
nearest-rank quantile edge cases on :class:`Histogram` (empty reservoir,
``q=0``/``q=1``, out-of-range ``q``), the shared :mod:`repro.numerics`
helpers, and the two fold-in functions ``observe_synthesis_stats`` and
``observe_trace``.
"""

import math

import pytest

from repro.numerics import geomean, quantile
from repro.service.metrics import (
    MetricsRegistry,
    _span_slug,
    observe_synthesis_stats,
    observe_trace,
)


class TestNumericsQuantile:
    def test_empty_returns_none(self):
        assert quantile([], 0.5) is None

    def test_singleton(self):
        for q in (0.0, 0.5, 1.0):
            assert quantile([7.0], q) == 7.0

    def test_bounds_are_min_and_max(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert quantile(data, 0.0) == 1.0
        assert quantile(data, 1.0) == 4.0

    def test_nearest_rank_median_of_two(self):
        # nearest-rank picks an element of the data, never interpolates:
        # ceil(0.5 * 2) = 1 -> the first element
        assert quantile([1.0, 2.0], 0.5) == 1.0

    def test_nearest_rank_percentiles(self):
        data = list(range(1, 101))  # 1..100
        assert quantile(data, 0.50) == 50
        assert quantile(data, 0.90) == 90
        assert quantile(data, 0.99) == 99

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1.0], -0.1)
        with pytest.raises(ValueError):
            quantile([1.0], 1.1)


class TestNumericsGeomean:
    def test_matches_log_identity(self):
        vals = [1.0, 2.0, 4.0]
        assert geomean(vals) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert geomean([0.0, -3.0, 2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0
        assert geomean([0.0]) == 0.0

    def test_large_values_do_not_overflow(self):
        big = [1e300, 1e300]
        assert math.isfinite(geomean(big))
        assert geomean(big) == pytest.approx(1e300, rel=1e-9)


class TestHistogramQuantile:
    def test_empty_reservoir_returns_none(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.quantile(0.5) is None
        assert hist.quantile(0.0) is None

    def test_extremes(self):
        hist = MetricsRegistry().histogram("h")
        for v in (5.0, 1.0, 3.0):
            hist.observe(v)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 5.0

    def test_out_of_range_raises(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(2.0)

    def test_render_skips_quantiles_when_empty(self):
        hist = MetricsRegistry().histogram("h")
        lines = hist.render()
        assert lines == ["h_count 0", "h_sum 0"]

    def test_as_dict_quantiles_none_when_empty(self):
        d = MetricsRegistry().histogram("h").as_dict()
        assert d["count"] == 0
        assert d["p50"] is None


class TestObserveSynthesisStats:
    def _stats(self):
        return {
            "totals": {"queries": 10, "cache_hits": 6, "cache_misses": 4,
                       "counterexamples": 2},
            "stages": {
                "lifting": {"time_s": 0.5, "queries": 3},
                "swizzling": {"time_s": 1.25, "queries": 7},
            },
        }

    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        observe_synthesis_stats(reg, self._stats())
        observe_synthesis_stats(reg, self._stats())
        d = reg.as_dict()
        assert d["repro_oracle_queries_total"] == 20
        assert d["repro_oracle_cache_hits_total"] == 12
        assert d["repro_oracle_cache_misses_total"] == 8
        assert d["repro_oracle_counterexamples_total"] == 4

    def test_stage_histograms_and_counters(self):
        reg = MetricsRegistry()
        observe_synthesis_stats(reg, self._stats())
        d = reg.as_dict()
        assert d["repro_stage_lifting_seconds"]["count"] == 1
        assert d["repro_stage_lifting_seconds"]["sum"] == pytest.approx(0.5)
        assert d["repro_stage_swizzling_queries_total"] == 7
        # absent stages create no metrics
        assert "repro_stage_verify_seconds" not in d

    def test_empty_stats_is_harmless(self):
        reg = MetricsRegistry()
        observe_synthesis_stats(reg, {})
        assert reg.as_dict()["repro_oracle_queries_total"] == 0


class TestObserveTrace:
    def test_slugging(self):
        assert _span_slug("oracle.query") == "oracle_query"
        assert _span_slug("pipeline.compile") == "pipeline_compile"
        assert _span_slug("Engine Worker!") == "engine_worker"
        assert _span_slug("...") == ""

    def test_folds_span_durations(self):
        tree = {"trace_id": "t", "spans": [
            {"name": "pipeline.compile", "start_s": 0.0, "end_s": 2.0,
             "children": [
                 {"name": "oracle.query", "start_s": 0.5, "end_s": 1.0,
                  "children": []},
                 {"name": "oracle.query", "start_s": 1.0, "end_s": 1.25,
                  "children": []},
             ]},
        ]}
        reg = MetricsRegistry()
        observe_trace(reg, tree)
        d = reg.as_dict()
        assert d["repro_span_pipeline_compile_seconds"]["count"] == 1
        assert d["repro_span_oracle_query_seconds"]["count"] == 2
        assert d["repro_span_oracle_query_seconds"]["sum"] == \
            pytest.approx(0.75)

    def test_nameless_spans_skipped(self):
        reg = MetricsRegistry()
        observe_trace(reg, {"spans": [
            {"name": "", "start_s": 0.0, "end_s": 1.0, "children": []}]})
        assert reg.as_dict() == {}

    def test_empty_tree(self):
        reg = MetricsRegistry()
        observe_trace(reg, {"trace_id": None, "spans": []})
        assert reg.as_dict() == {}
