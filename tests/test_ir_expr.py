"""Unit tests for IR expression construction and typing."""

import pytest

from repro.errors import TypeMismatchError
from repro.ir import builder as B
from repro.ir import expr as E
from repro.types import BOOL, I16, U16, U8, VectorType


def v8(offset=0):
    return B.load("in", offset, 8, U8)


class TestConstruction:
    def test_const_in_range(self):
        c = B.const(300, U8)  # wraps
        assert c.value == 44

    def test_const_out_of_range_direct(self):
        with pytest.raises(TypeMismatchError):
            E.Const(300, U8)

    def test_load_type(self):
        assert v8().type == VectorType(U8, 8)
        assert B.load("in", 0, 1, U8).type == U8

    def test_load_stride_extent(self):
        ld = B.load("in", 2, 8, U8, stride=2)
        assert ld.extent == 15

    def test_load_negative_stride_rejected(self):
        with pytest.raises(TypeMismatchError):
            E.Load("in", 0, 8, U8, 0)

    def test_broadcast(self):
        b = B.broadcast(5, 8, U8)
        assert b.type == VectorType(U8, 8)

    def test_broadcast_of_vector_rejected(self):
        with pytest.raises(TypeMismatchError):
            E.Broadcast(v8(), 8)

    def test_binary_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            E.Add(v8(), B.load("in", 0, 8, U16))

    def test_operator_overload_wraps_ints(self):
        e = v8() + 3
        assert isinstance(e, E.Add)
        assert isinstance(e.b, E.Broadcast)
        assert e.b.value == E.Const(3, U8)

    def test_widen(self):
        w = B.widen(v8())
        assert isinstance(w, E.Cast)
        assert w.type == VectorType(U16, 8)

    def test_cast_noop_elided(self):
        assert B.cast(U8, v8()) is not B.cast(U16, v8())
        assert B.cast(U8, v8()) == v8()

    def test_absd_result_unsigned(self):
        a = B.load("in", 0, 8, I16)
        b = B.load("in", 1, 8, I16)
        assert E.Absd(a, b).type == VectorType(U16, 8)

    def test_compare_type(self):
        c = B.lt(v8(), v8())
        assert c.type == VectorType(BOOL, 8)

    def test_select_checks_arms(self):
        c = B.lt(v8(), v8())
        with pytest.raises(TypeMismatchError):
            E.Select(c, v8(), B.load("in", 0, 8, U16))

    def test_select_checks_cond(self):
        with pytest.raises(TypeMismatchError):
            E.Select(v8(), v8(), v8())

    def test_clamp_builds_min_max(self):
        e = B.clamp(v8(), 0, 255)
        assert isinstance(e, E.Min)
        assert isinstance(e.a, E.Max)

    def test_rounding_shift_right(self):
        e = B.rounding_shift_right(B.widen(v8()), 4)
        assert isinstance(e, E.Shr)
        assert isinstance(e.a, E.Add)

    def test_rounding_shift_rejects_zero(self):
        with pytest.raises(TypeMismatchError):
            B.rounding_shift_right(v8(), 0)


class TestStructure:
    def test_children_and_rebuild(self):
        e = v8() + v8(1)
        a, b = e.children
        rebuilt = e.with_children([b, a])
        assert isinstance(rebuilt, E.Add)
        assert rebuilt.children == (b, a)

    def test_iteration_preorder(self):
        e = v8() + v8(1)
        nodes = list(e)
        assert nodes[0] is e
        assert len(nodes) == 3

    def test_equality_is_structural(self):
        assert (v8() + 1) == (v8() + 1)
        assert (v8() + 1) != (v8() + 2)

    def test_hashable(self):
        assert len({v8() + 1, v8() + 1, v8() + 2}) == 2
