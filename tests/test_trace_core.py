"""Tests for the tracing core (:mod:`repro.trace.core`)."""

import pickle
import threading

from repro.trace.core import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    iter_span_dicts,
    span_duration,
)


class TestNullTracer:
    def test_span_is_shared_noop(self):
        assert NULL_TRACER.span("anything", x=1) is NULL_SPAN
        with NULL_TRACER.span("a") as sp:
            assert sp is NULL_SPAN
            sp.set(ignored=True).event("nothing", k=2)

    def test_null_span_is_falsy(self):
        assert not NULL_SPAN
        with NULL_TRACER.span("a") as sp:
            # the guard pattern every instrumented site uses
            assert not sp

    def test_disabled_flags(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.context() is None
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.tree() == {"trace_id": None, "spans": []}
        NULL_TRACER.event("dropped")
        NULL_TRACER.attach([{"name": "x", "start_s": 0.0}])


class TestSpans:
    def test_nesting_and_durations(self):
        tr = Tracer()
        with tr.span("outer", kind="test") as outer:
            assert tr.current() is outer
            with tr.span("inner") as inner:
                assert tr.current() is inner
            assert tr.current() is outer
        assert tr.current() is None
        assert len(tr.roots) == 1
        root = tr.roots[0]
        assert root.name == "outer"
        assert root.attrs == {"kind": "test"}
        assert [c.name for c in root.children] == ["inner"]
        assert root.end_s is not None
        assert root.duration_s >= root.children[0].duration_s >= 0.0

    def test_spans_are_truthy(self):
        tr = Tracer()
        with tr.span("a") as sp:
            assert sp

    def test_set_merges_attrs(self):
        tr = Tracer()
        with tr.span("a", x=1) as sp:
            sp.set(y=2)
            sp.set(x=3)
        assert tr.roots[0].attrs == {"x": 3, "y": 2}

    def test_events_recorded_with_timestamps(self):
        tr = Tracer()
        with tr.span("a") as sp:
            sp.event("tick", n=1)
            tr.event("tock")  # lands on the current span
        events = tr.roots[0].events
        assert [e["name"] for e in events] == ["tick", "tock"]
        assert events[0]["attrs"] == {"n": 1}
        assert all(e["ts_s"] >= tr.roots[0].start_s for e in events)

    def test_event_without_open_span_is_dropped(self):
        tr = Tracer()
        tr.event("orphan")
        assert tr.roots == []

    def test_exception_marks_error_and_closes(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        root = tr.roots[0]
        assert root.attrs["error"] == "ValueError"
        assert root.end_s is not None

    def test_unbalanced_exit_closes_abandoned_children(self):
        tr = Tracer()
        outer = tr.span("outer")
        tr.span("abandoned")  # never explicitly closed
        outer.__exit__(None, None, None)
        assert tr.current() is None
        abandoned = tr.roots[0].children[0]
        assert abandoned.end_s is not None

    def test_sibling_roots(self):
        tr = Tracer()
        with tr.span("first"):
            pass
        with tr.span("second"):
            pass
        assert [r.name for r in tr.roots] == ["first", "second"]

    def test_threads_get_sibling_roots(self):
        tr = Tracer()
        done = threading.Event()

        def other():
            with tr.span("thread-root"):
                pass
            done.set()

        with tr.span("main-root"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert done.is_set()
        names = sorted(r.name for r in tr.roots)
        assert names == ["main-root", "thread-root"]
        tids = {r.tid for r in tr.roots}
        assert len(tids) == 2


class TestSerialization:
    def _sample(self):
        tr = Tracer(trace_id="cafe")
        with tr.span("root", a=1) as sp:
            sp.event("ev", b=2)
            with tr.span("child"):
                pass
        return tr

    def test_round_trip(self):
        tr = self._sample()
        data = tr.roots[0].to_dict()
        clone = Span.from_dict(data)
        assert clone.name == "root"
        assert clone.attrs == {"a": 1}
        assert clone.events[0]["name"] == "ev"
        assert [c.name for c in clone.children] == ["child"]
        assert clone.to_dict() == data

    def test_tree_is_picklable_and_plain(self):
        tree = self._sample().tree()
        assert tree["trace_id"] == "cafe"
        assert "wall_epoch" in tree
        pickle.loads(pickle.dumps(tree))

    def test_shift_translates_subtree(self):
        tr = self._sample()
        data = tr.roots[0].to_dict()
        clone = Span.from_dict(data)
        d0 = clone.duration_s
        clone.shift(10.0)
        assert clone.start_s == data["start_s"] + 10.0
        assert clone.duration_s == d0
        assert clone.children[0].start_s == (
            data["children"][0]["start_s"] + 10.0
        )
        assert clone.events[0]["ts_s"] == data["events"][0]["ts_s"] + 10.0

    def test_attach_rebases_to_attach_instant(self):
        worker = Tracer(trace_id="shared")
        with worker.span("engine.worker"):
            with worker.span("oracle.query"):
                pass
        shipped = worker.tree()["spans"]

        parent = Tracer(trace_id="shared")
        with parent.span("engine.batch") as batch:
            parent.attach(shipped)
            attach_time = parent.now()
        grafted = batch.children[0]
        assert grafted.name == "engine.worker"
        # re-based to end at (approximately) the attach instant
        assert abs(grafted.end_s - attach_time) < 0.05
        assert grafted.start_s <= grafted.end_s
        # durations preserved exactly
        src = shipped[0]
        assert abs(grafted.duration_s - span_duration(src)) < 1e-9

    def test_attach_without_open_span_creates_roots(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        parent.attach(worker.tree()["spans"])
        assert [r.name for r in parent.roots] == ["w"]

    def test_iter_span_dicts_depths(self):
        tree = self._sample().tree()
        walked = [(s["name"], d) for s, d in iter_span_dicts(tree)]
        assert walked == [("root", 0), ("child", 1)]

    def test_span_duration_clamps_negative(self):
        assert span_duration({"start_s": 5.0, "end_s": 4.0}) == 0.0
        assert span_duration({"start_s": 1.0, "end_s": 3.5}) == 2.5


class TestTracerIdentity:
    def test_trace_id_generated_and_propagated(self):
        tr = Tracer()
        assert len(tr.trace_id) == 16
        assert tr.context() == (tr.trace_id,)
        assert Tracer(trace_id="abc").trace_id == "abc"

    def test_walk_yields_depths(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        assert [(s.name, d) for s, d in tr.walk()] == [("a", 0), ("b", 1)]
