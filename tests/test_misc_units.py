"""Unit tests for smaller surfaces: errors, pipeline internals, frontend
expression reprs, valuations, and interpreter error paths."""

import pytest

import repro
from repro import errors
from repro.frontend import FParam, Func, ImageParam, Var, fabsd, fcast, fselect
from repro.frontend.fexpr import FBinary, FConst
from repro.hvx import interp as hvx_interp
from repro.hvx import isa as H
from repro.ir import builder as B
from repro.ir.interp import Environment
from repro.pipeline import (
    BACKEND_BASELINE,
    BACKEND_RAKE,
    _is_trivial,
    compile_pipeline,
)
from repro.types import U16, U8


class TestErrors:
    def test_hierarchy(self):
        for err in (
            errors.TypeMismatchError, errors.EvaluationError,
            errors.LoweringError, errors.SynthesisError,
            errors.UnsupportedExpressionError, errors.PatternError,
            errors.SimulationError, errors.ScheduleError,
        ):
            assert issubclass(err, errors.ReproError)

    def test_unsupported_is_synthesis_error(self):
        assert issubclass(errors.UnsupportedExpressionError,
                          errors.SynthesisError)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names(self):
        for name in ("compile_pipeline", "select_instructions",
                     "RakeSelector", "LoweringOptions", "CompiledPipeline"):
            assert hasattr(repro, name)


class TestPipelineInternals:
    def test_is_trivial(self):
        assert _is_trivial(B.load("a", 0, 128, U8))
        assert _is_trivial(B.broadcast(1, 128, U8))
        assert not _is_trivial(B.load("a", 0, 128, U8) + 1)

    def test_unknown_backend_rejected(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        f = Func("f", U8)
        f[x, y] = inp(x, y)
        with pytest.raises(errors.ReproError):
            compile_pipeline(f, backend="llvm")

    def test_trivial_stage_uses_baseline(self):
        x, y = Var("x"), Var("y")
        inp = ImageParam("input", U8, 2)
        f = Func("copyf", U8)
        f[x, y] = inp(x, y)
        compiled = compile_pipeline(f, backend=BACKEND_RAKE)
        assert compiled.stages[0].exprs[0].selector == "trivial"
        assert compiled.optimized_exprs == 0

    def test_backend_constants(self):
        assert BACKEND_RAKE == "rake"
        assert BACKEND_BASELINE == "baseline"


class TestFrontendExprs:
    def test_reprs(self):
        x = Var("x")
        inp = ImageParam("img", U8, 1)
        assert repr(x) == "x"
        assert repr(FConst(3)) == "3"
        assert "img(x)" in repr(inp(x))
        assert repr(FParam("k", U8)) == "k"
        e = fcast(U8, inp(x)) + 1
        assert "+" in repr(e)
        assert "u8(" in repr(e)
        s = fselect(inp(x) > inp(x + 1), inp(x), 0)
        assert repr(s).startswith("select(")
        assert "absd" in repr(fabsd(inp(x), inp(x + 1)))

    def test_int_coercion_in_operators(self):
        x = Var("x")
        inp = ImageParam("img", U8, 1)
        e = 2 * inp(x) + 1
        assert isinstance(e, FBinary)

    def test_bad_operand_rejected(self):
        x = Var("x")
        inp = ImageParam("img", U8, 1)
        with pytest.raises(errors.LoweringError):
            inp(x) + "three"


class TestHvxInterpErrors:
    def test_unknown_node(self):
        class Alien(H.HvxExpr):
            @property
            def type(self):
                return H.vec(U8, 8)

        with pytest.raises(errors.EvaluationError):
            hvx_interp.evaluate(Alien(), Environment())

    def test_splat_of_vector_rejected(self):
        splat = H.HvxSplat(B.load("in", 0, 8, U8), U8, 8)
        from conftest import env_with

        with pytest.raises(errors.EvaluationError):
            hvx_interp.evaluate(splat, env_with())

    def test_arity_checked_at_construction(self):
        with pytest.raises(errors.TypeMismatchError):
            H.HvxInstr("vadd", (H.HvxLoad("in", 0, 8, U8),))

    def test_imm_count_checked(self):
        with pytest.raises(errors.TypeMismatchError):
            H.HvxInstr("vasl", (H.HvxLoad("in", 0, 8, U8),), ())

    def test_duplicate_definition_rejected(self):
        with pytest.raises(errors.TypeMismatchError):
            H.define("vadd", 2, "alu", lambda ts, i: ts[0],
                     lambda a, i: a[0])


class TestSelectionResultSurface:
    def test_result_fields(self):
        from repro import select_instructions

        e = B.widen(B.load("in", 0, 128, U8))
        result = select_instructions(e)
        assert result.source == e
        assert result.program is not None
        assert result.lifted is not None
        assert result.trace
