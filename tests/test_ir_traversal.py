"""Tests for IR traversal, substitution and live-data helpers."""

from repro.ir import builder as B
from repro.ir import expr as E
from repro.ir.traversal import (
    buffers_read,
    collect,
    depth,
    live_data,
    loads_of,
    node_count,
    post_order,
    scalar_vars_of,
    substitute,
    transform,
)
from repro.types import I32, U8


def u8v(offset=0):
    return B.load("in", offset, 8, U8)


def test_post_order_children_first():
    e = u8v() + u8v(1)
    order = list(post_order(e))
    assert order[-1] is e
    assert order[0] == u8v()


def test_transform_rewrites_bottom_up():
    e = u8v() + u8v(1)

    def bump(n):
        if isinstance(n, E.Load):
            return E.Load(n.buffer, n.offset + 10, n.lanes, n.elem)
        return None

    out = transform(e, bump)
    assert loads_of(out)[0].offset == 10
    assert loads_of(out)[1].offset == 11


def test_transform_identity_shares_nodes():
    e = u8v() + u8v(1)
    assert transform(e, lambda n: None) is e


def test_substitute():
    e = u8v() + u8v(1)
    out = substitute(e, {u8v(1): u8v(7)})
    assert loads_of(out)[1].offset == 7


def test_collect():
    e = B.widen(u8v()) + B.widen(u8v(1))
    casts = collect(e, lambda n: isinstance(n, E.Cast))
    assert len(casts) == 2


def test_buffers_read():
    e = u8v() + B.load("other", 0, 8, U8)
    assert buffers_read(e) == {"in", "other"}


def test_scalar_vars_deduplicated():
    k = E.ScalarVar("k", U8)
    e = B.broadcast(k, 8) + B.broadcast(k, 8)
    assert scalar_vars_of(e) == [k]


def test_node_count_and_depth():
    e = u8v() + u8v(1)
    assert node_count(e) == 3
    assert depth(e) == 2


def test_live_data_merges_ranges():
    e = u8v(-1) + u8v(1)
    assert live_data(e) == {"in": (-1, 9)}


def test_live_data_strided():
    e = B.load("in", 0, 8, U8, stride=2)
    assert live_data(e) == {"in": (0, 15)}
