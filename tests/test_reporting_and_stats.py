"""Tests for the reporting renderers and synthesis statistics."""

import time

import pytest

from repro.reporting import (
    SpeedupRow,
    codegen_comparison,
    compilation_table,
    geomean,
    lifting_trace,
    speedup_figure,
)
from repro.synthesis.lifting import LiftStep
from repro.synthesis.stats import STAGES, SynthesisStats


class TestGeomean:
    def test_simple(self):
        assert geomean([2.0, 2.0]) == pytest.approx(2.0)
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geomean([2.0, 0.0]) == pytest.approx(2.0)


class TestSpeedupFigure:
    def rows(self):
        return [
            SpeedupRow("sobel", 768, 1024, paper_speedup=1.27),
            SpeedupRow("dilate3x3", 640, 640, paper_band="tied"),
        ]

    def test_contains_bars_and_values(self):
        text = speedup_figure(self.rows())
        assert "sobel" in text
        assert "1.33x" in text
        assert "paper=1.27x" in text
        assert "paper: tied" in text
        assert "geomean" in text

    def test_speedup_property(self):
        row = SpeedupRow("x", 100, 150)
        assert row.speedup == pytest.approx(1.5)
        assert SpeedupRow("x", 0, 10).speedup == 0.0


class TestCompilationTable:
    def test_renders_rows_and_split(self):
        rows = [{
            "name": "sobel", "exprs": 1,
            "lifting_queries": 10, "sketching_queries": 20,
            "swizzling_queries": 30,
            "lifting_time_s": 1.0, "sketching_time_s": 2.0,
            "swizzling_time_s": 7.0,
        }]
        text = compilation_table(rows)
        assert "sobel" in text
        assert "time split" in text
        assert "swizzling 70%" in text

    def test_empty_total_time(self):
        rows = [{
            "name": "x", "exprs": 0,
            "lifting_queries": 0, "sketching_queries": 0,
            "swizzling_queries": 0,
            "lifting_time_s": 0.0, "sketching_time_s": 0.0,
            "swizzling_time_s": 0.0,
        }]
        assert "time split" not in compilation_table(rows)


def test_codegen_comparison_sections():
    text = codegen_comparison("t", "SRC", "BASE", "RAKE")
    for token in ("SRC", "BASE", "RAKE", "Halide IR", "Rake codegen"):
        assert token in text


def test_lifting_trace_render():
    steps = [LiftStep("extend", "a", "b"), LiftStep("update", "c", "d")]
    text = lifting_trace(steps)
    assert "Step 1 [extend]" in text
    assert "Step 2 [update]" in text


class TestSynthesisStats:
    def test_stage_attribution(self):
        stats = SynthesisStats()
        with stats.stage("lifting"):
            stats.count_query()
            stats.count_query()
        with stats.stage("swizzling"):
            stats.count_query()
        assert stats.stages["lifting"].queries == 2
        assert stats.stages["swizzling"].queries == 1
        assert stats.total_queries == 3

    def test_nested_stages_attribute_innermost(self):
        stats = SynthesisStats()
        with stats.stage("sketching"):
            with stats.stage("swizzling"):
                stats.count_query()
            stats.count_query()
        assert stats.stages["swizzling"].queries == 1
        assert stats.stages["sketching"].queries == 1

    def test_unknown_stage_rejected(self):
        stats = SynthesisStats()
        with pytest.raises(ValueError):
            with stats.stage("parsing"):
                pass

    def test_time_accumulates(self):
        stats = SynthesisStats()
        with stats.stage("lifting"):
            time.sleep(0.01)
        assert stats.stages["lifting"].time_s > 0
        assert stats.total_time_s > 0

    def test_queries_outside_stage_ignored(self):
        stats = SynthesisStats()
        stats.count_query()
        assert stats.total_queries == 0

    def test_merged_with(self):
        a, b = SynthesisStats(), SynthesisStats()
        with a.stage("lifting"):
            a.count_query()
        with b.stage("lifting"):
            b.count_query()
        b.expressions = 2
        merged = a.merged_with(b)
        assert merged.stages["lifting"].queries == 2
        assert merged.expressions == 2

    def test_summary_keys(self):
        stats = SynthesisStats()
        summary = stats.summary()
        for stage in STAGES:
            assert f"{stage}_queries" in summary
            assert f"{stage}_time_s" in summary

    def test_cache_metrics_attributed(self):
        stats = SynthesisStats()
        with stats.stage("sketching"):
            stats.count_cache_hit()
            stats.count_cache_miss()
            stats.count_counterexample()
        assert stats.stages["sketching"].cache_hits == 1
        assert stats.stages["sketching"].cache_misses == 1
        assert stats.stages["sketching"].counterexamples == 1
        assert stats.total_cache_hits == 1
        assert stats.total_cache_misses == 1
        assert stats.total_counterexamples == 1

    def test_merged_with_cache_metrics(self):
        a, b = SynthesisStats(), SynthesisStats()
        with a.stage("lifting"):
            a.count_cache_hit()
        with b.stage("lifting"):
            b.count_cache_miss()
            b.count_counterexample()
        merged = a.merged_with(b)
        assert merged.stages["lifting"].cache_hits == 1
        assert merged.stages["lifting"].cache_misses == 1
        assert merged.stages["lifting"].counterexamples == 1

    def test_as_dict_shape(self):
        stats = SynthesisStats()
        with stats.stage("swizzling"):
            stats.count_query()
            stats.count_cache_miss()
        d = stats.as_dict()
        assert set(d) == {"expressions", "stages", "totals"}
        assert set(d["stages"]) == set(STAGES)
        assert d["stages"]["swizzling"]["queries"] == 1
        assert d["totals"]["cache_misses"] == 1
        for metrics in d["stages"].values():
            assert set(metrics) == {
                "queries", "time_s", "cache_hits", "cache_misses",
                "counterexamples", "batched_evals", "fallback_evals",
                "fingerprint_hits", "classes_formed", "class_splits",
                "queries_saved", "pruned_grammar_hits",
            }

    def test_engine_summary_render(self):
        from repro.reporting import engine_summary

        stats = SynthesisStats()
        with stats.stage("lifting"):
            stats.count_query()
            stats.count_cache_hit()
            stats.count_query()
            stats.count_cache_miss()
        text = engine_summary(stats)
        assert "oracle queries: 2" in text
        assert "1 cache hits" in text
        assert "50% hit rate" in text
        assert "lifting: 2 queries" in text
        assert "sketching" not in text  # silent stages are omitted
