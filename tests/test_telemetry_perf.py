"""The regression detector and the ``repro perf`` CLI family.

The detector's edge cases — empty baseline, single-sample windows, zero
variance, zero baselines, quarantined segments mid-read — each get a
direct test, and two hypothesis properties pin the safety contract:
``compare`` never divides by zero for any sample values, and it is
*symmetric-safe* (for any pair of sample sets, at most one direction can
report a regression on a group).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.telemetry import TelemetryStore, build_record, compare, emit
from repro.telemetry.dashboard import (
    ascii_sparkline,
    render_ascii,
    render_html,
    svg_sparkline,
)

import pytest


def rec(workload="mul", target="hvx", wall_s=1.0, **kw):
    return build_record(source="test", workload=workload, target=target,
                        wall_s=wall_s, **kw)


def fill_store(directory, walls, workload="mul"):
    store = TelemetryStore(directory)
    for w in walls:
        emit(store, rec(workload=workload, wall_s=w))
    return directory


class TestCompareEdgeCases:
    def test_empty_baseline_skips_not_regresses(self):
        report = compare([], [rec(), rec()])
        (delta,) = report.deltas
        assert delta.skipped and delta.reason == "no baseline samples"
        assert report.ok

    def test_empty_current_skips(self):
        report = compare([rec(), rec()], [])
        (delta,) = report.deltas
        assert delta.skipped and delta.reason == "no current samples"

    def test_single_sample_window_skipped_by_default(self):
        report = compare([rec(wall_s=1.0)], [rec(wall_s=100.0)])
        (delta,) = report.deltas
        assert delta.skipped and "needs >= 2 samples" in delta.reason
        assert report.ok

    def test_single_sample_verdict_with_min_samples_one(self):
        report = compare([rec(wall_s=1.0)], [rec(wall_s=100.0)],
                         min_samples=1)
        (delta,) = report.deltas
        assert delta.regressed and not delta.skipped

    def test_zero_variance_is_clean(self):
        same = [rec(wall_s=2.0) for _ in range(4)]
        report = compare(same, [rec(wall_s=2.0) for _ in range(4)])
        (delta,) = report.deltas
        assert not delta.regressed and not delta.improved
        assert delta.delta == 0.0

    def test_zero_baseline_judged_by_min_delta_alone(self):
        base = [rec(wall_s=0.0), rec(wall_s=0.0)]
        cur = [rec(wall_s=0.5), rec(wall_s=0.5)]
        report = compare(base, cur, min_delta=0.1)
        (delta,) = report.deltas
        assert delta.ratio is None  # no division happened
        assert delta.regressed
        # under the floor: new cost too small to count
        tiny = [rec(wall_s=0.05), rec(wall_s=0.05)]
        assert compare(base, tiny, min_delta=0.1).ok

    def test_min_delta_floor_suppresses_jitter(self):
        base = [rec(wall_s=0.002)] * 3
        cur = [rec(wall_s=0.0025)] * 3  # +25% but only +0.5ms
        assert not compare(base, cur, threshold=0.20).ok
        assert compare(base, cur, threshold=0.20, min_delta=0.001).ok

    def test_disjoint_groups_are_skipped(self):
        base = [rec(workload="mul")] * 2
        cur = [rec(workload="add")] * 2
        report = compare(base, cur)
        assert {d.reason for d in report.deltas} == {
            "no baseline samples", "no current samples"}
        assert report.ok

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            compare([], [], threshold=-0.1)
        with pytest.raises(ValueError):
            compare([], [], min_samples=0)

    def test_improvement_reported(self):
        report = compare([rec(wall_s=4.0)] * 2, [rec(wall_s=1.0)] * 2)
        (delta,) = report.deltas
        assert delta.improved and not delta.regressed


samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=0, max_size=8,
)


class TestCompareProperties:
    @settings(max_examples=200, deadline=None)
    @given(a=samples, b=samples)
    def test_never_divides_by_zero(self, a, b):
        base = [rec(wall_s=v) for v in a]
        cur = [rec(wall_s=v) for v in b]
        compare(base, cur, min_samples=1)  # must not raise

    @settings(max_examples=200, deadline=None)
    @given(a=samples, b=samples,
           threshold=st.floats(min_value=0.0, max_value=2.0),
           min_delta=st.floats(min_value=0.0, max_value=10.0))
    def test_symmetric_safe(self, a, b, threshold, min_delta):
        """A -> B and B -> A can never both call the same group a
        regression: both see the same two medians, and regressing
        requires strictly exceeding the other's by the guards."""
        base = [rec(wall_s=v) for v in a]
        cur = [rec(wall_s=v) for v in b]
        fwd = compare(base, cur, threshold=threshold,
                      min_samples=1, min_delta=min_delta)
        rev = compare(cur, base, threshold=threshold,
                      min_samples=1, min_delta=min_delta)
        assert not (fwd.regressions and rev.regressions)


class TestPerfCli:
    def test_report_and_diff_clean_rerun_exit_zero(self, tmp_path, capsys):
        store = fill_store(tmp_path / "a", [1.0, 1.1, 0.9])
        assert main(["perf", "report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "mul" in out and "geomean" in out
        # identical corpus diffed against itself is never a regression
        assert main(["perf", "diff", str(store), str(store)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_diff_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        base = fill_store(tmp_path / "base", [1.0, 1.0, 1.0])
        slow = fill_store(tmp_path / "slow", [2.0, 2.0, 2.0])
        assert main(["perf", "diff", str(base), str(slow)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "mul/hvx" in out

    def test_diff_improvement_exits_zero(self, tmp_path, capsys):
        base = fill_store(tmp_path / "base", [2.0, 2.0])
        fast = fill_store(tmp_path / "fast", [1.0, 1.0])
        assert main(["perf", "diff", str(base), str(fast)]) == 0
        assert "improved" in capsys.readouterr().out

    def test_bad_store_one_line_error_exit_two(self, tmp_path, capsys):
        good = fill_store(tmp_path / "good", [1.0, 1.0])
        missing = tmp_path / "missing"
        assert main(["perf", "diff", str(missing), str(good)]) == 2
        err = capsys.readouterr().err
        assert "baseline: no telemetry store" in err
        assert main(["perf", "diff", str(good), str(missing)]) == 2
        assert "current: no telemetry store" in capsys.readouterr().err
        assert main(["perf", "report", str(missing)]) == 2

    def test_empty_baseline_store_diff_exits_zero(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        (empty / "segment-0-dead.jsonl").write_text("")
        cur = fill_store(tmp_path / "cur", [1.0, 1.0])
        assert main(["perf", "diff", str(empty), str(cur)]) == 0
        assert "SKIP" in capsys.readouterr().out

    def test_quarantined_segment_mid_read_still_diffs(self, tmp_path,
                                                      capsys):
        base = fill_store(tmp_path / "base", [1.0, 1.0])
        cur = fill_store(tmp_path / "cur", [1.0, 1.0])
        seg = next(cur.glob("segment-*.jsonl"))
        with open(seg, "a") as fh:
            fh.write("torn mid-write\n")
        assert main(["perf", "diff", str(base), str(cur)]) == 0
        captured = capsys.readouterr()
        assert "quarantined" in captured.err
        assert "0 regression(s)" in captured.out
        assert seg.with_name(seg.name + ".quarantine").exists()

    def test_invalid_threshold_exits_two(self, tmp_path, capsys):
        store = fill_store(tmp_path / "s", [1.0, 1.0])
        assert main(["perf", "diff", str(store), str(store),
                     "--threshold", "-1"]) == 2
        assert "threshold" in capsys.readouterr().err

    def test_filters_narrow_the_corpus(self, tmp_path, capsys):
        store = TelemetryStore(tmp_path / "s")
        emit(store, rec(workload="mul", wall_s=1.0))
        emit(store, rec(workload="add", wall_s=9.0))
        assert main(["perf", "report", str(tmp_path / "s"),
                     "--workload", "add"]) == 0
        out = capsys.readouterr().out
        assert "add" in out and "records=1" in out

    def test_dashboard_ascii_and_html(self, tmp_path, capsys):
        store = fill_store(tmp_path / "s", [1.0, 2.0, 3.0])
        assert main(["perf", "dashboard", str(store)]) == 0
        assert "mul" in capsys.readouterr().out
        out = tmp_path / "dash.html"
        assert main(["perf", "dashboard", str(store),
                     "--out", str(out)]) == 0
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "</html>" in html
        assert "<script" not in html  # self-contained, zero-JS

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["perf", "diff", "a", "b"])
        assert args.metric == "wall_s"
        assert args.threshold == 0.20
        assert args.min_samples == 2
        assert args.min_delta == 0.0


class TestSparklines:
    def test_ascii_sparkline_monotone(self):
        line = ascii_sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line == "".join(sorted(line))  # rising ramp

    def test_ascii_sparkline_flat_and_single(self):
        assert len(set(ascii_sparkline([5.0] * 6))) == 1  # zero variance
        assert len(ascii_sparkline([1.0])) == 1
        assert ascii_sparkline([]) == ""

    def test_svg_sparkline_polyline(self):
        svg = svg_sparkline([1.0, 5.0, 2.0])
        assert svg.startswith("<svg") and "polyline" in svg

    def test_render_html_escapes_names(self):
        evil = rec(workload="<script>alert(1)</script>")
        html = render_html([evil, evil])
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_render_ascii_empty_corpus(self):
        text = render_ascii([])
        assert "no records" in text.lower() or text.strip()
