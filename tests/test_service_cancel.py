"""Cancellation soundness: a cancelled job never poisons the caches.

Satellite of the service PR: cancellation is observed only *between*
oracle queries, so every verdict that reaches the in-process or on-disk
cache is a complete differential pass.  These tests cancel real
compilations at controlled points in the search (first check, deep in
sketch enumeration, deep in swizzle concretization) and then prove the
caches are still sound by recompiling against them and demanding results
byte-identical to a clean-cache compile.
"""

import json
import threading
import time

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro.cancel import CancelToken
from repro.errors import CancelledError, DeadlineExceededError
from repro.hvx import program_listing
from repro.pipeline import compile_pipeline
from repro.service.protocol import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_QUEUED,
    JOB_TIMEOUT,
    CompileRequest,
)
from repro.service.scheduler import JobScheduler, default_compile_fn
from repro.synthesis.engine import OracleCache
from repro.synthesis.stats import SynthesisStats
from repro.workloads.base import get

WORKLOAD = "mul"


class TripAfter(CancelToken):
    """A token that cancels itself on its Nth :meth:`check` call.

    Deterministically stops a compilation mid-search without relying on
    wall-clock timing: check #1 is the first query boundary, larger trip
    points land inside sketch enumeration / swizzle scoring loops.
    """

    def __init__(self, trip_at: int):
        super().__init__()
        self.trip_at = trip_at
        self.calls = 0

    def check(self) -> None:
        self.calls += 1
        if self.calls >= self.trip_at:
            self.cancel("tripped by test")
        super().check()


def listings(compiled):
    return [
        (cs.name, ce.selector, program_listing(ce.program))
        for cs in compiled.stages for ce in cs.exprs
    ]


@pytest.fixture(scope="module")
def clean_reference():
    """Listings from a clean-cache compile — the soundness yardstick."""
    wl = get(WORKLOAD)
    stats = SynthesisStats()
    compiled = compile_pipeline(wl.build(), cache=OracleCache(), stats=stats)
    return listings(compiled), stats.total_cache_misses


def assert_store_is_sound(path):
    """Every flushed line must be a complete, parseable record."""
    if not path.exists():
        return
    for line in path.read_text().splitlines():
        rec = json.loads(line)  # raises on a torn line
        assert rec["t"] in ("v", "c")
        assert isinstance(rec["k"], str) and rec["k"]
        if rec["t"] == "v":
            assert rec["v"] in (0, 1)


class TestCancelledCompileLeavesSoundCaches:
    # trip points chosen to land in different search phases: the very
    # first boundary, early lifting/sketching, and deep in the swizzle
    # search (mul issues ~90 queries cold).
    @pytest.mark.parametrize("trip_at", [1, 10, 60])
    def test_recompile_after_cancel_matches_clean_run(
        self, tmp_path, trip_at, clean_reference
    ):
        reference, clean_misses = clean_reference
        cache = OracleCache.with_disk(tmp_path)
        token = TripAfter(trip_at)
        wl = get(WORKLOAD)
        with pytest.raises(CancelledError):
            compile_pipeline(wl.build(), cache=cache, cancel=token)
        assert token.calls == trip_at  # stopped at the chosen boundary

        # Disk store: flushed lines are complete records, and a fresh
        # process loading them sees only full verdicts.
        cache.flush()
        store_path = tmp_path / "oracle.jsonl"
        assert_store_is_sound(store_path)
        reloaded = OracleCache.with_disk(tmp_path)
        for key, verdict in reloaded.store._verdicts.items():
            assert isinstance(verdict, bool)
            assert cache.lookup(key) == verdict  # duplicates are idempotent

        # The partial cache must be *usable*: a warm recompile completes
        # and selects byte-identical programs to the clean-cache run.
        warm_stats = SynthesisStats()
        warm = compile_pipeline(wl.build(), cache=cache, stats=warm_stats)
        assert listings(warm) == reference
        assert warm_stats.total_cache_misses <= clean_misses

    def test_deadline_mid_compile_is_equally_sound(self, tmp_path,
                                                   clean_reference):
        reference, _ = clean_reference
        cache = OracleCache.with_disk(tmp_path)
        wl = get(WORKLOAD)
        with pytest.raises(DeadlineExceededError):
            # Far shorter than a cold compile: expires inside synthesis.
            compile_pipeline(wl.build(), cache=cache, deadline_s=0.02)
        cache.flush()
        assert_store_is_sound(tmp_path / "oracle.jsonl")
        warm = compile_pipeline(wl.build(), cache=cache)
        assert listings(warm) == reference


class TestSchedulerCancelRealCompile:
    def test_cancel_running_job_frees_slot_and_keeps_store_sound(
        self, tmp_path, clean_reference
    ):
        reference, _ = clean_reference
        started = threading.Event()
        proceed = threading.Event()

        def gated(request, cancel, cache):
            # Hold the worker at a query boundary so the test can land a
            # cancel while the job is deterministically RUNNING; the real
            # compile then observes the tripped token at its first check.
            started.set()
            proceed.wait(timeout=30)
            return default_compile_fn(request, cancel, cache)

        s = JobScheduler(workers=1, cache_dir=str(tmp_path), compile_fn=gated)
        try:
            job, _ = s.submit(CompileRequest(workload=WORKLOAD))
            assert started.wait(timeout=30)
            assert s.cancel(job.id)
            proceed.set()
            assert s.wait(job.id, timeout=30).state == JOB_CANCELLED

            # The single worker slot is free again, and a rerun of the
            # *same* request (a new coalescing generation) completes with
            # programs identical to the clean-cache reference.
            rerun, coalesced = s.submit(CompileRequest(workload=WORKLOAD))
            assert not coalesced and rerun.id != job.id
            done = s.wait(rerun.id, timeout=120)
            assert done.state == JOB_DONE
            assert [
                (p["stage"], p["selector"], p["listing"])
                for p in done.result.programs
            ] == [row for row in reference if row[1] != "trivial"]
        finally:
            s.shutdown()
        assert_store_is_sound(tmp_path / "oracle.jsonl")

    def test_deadline_times_out_real_compile(self, tmp_path):
        s = JobScheduler(workers=1, cache_dir=str(tmp_path),
                         compile_fn=default_compile_fn)
        try:
            job, _ = s.submit(
                CompileRequest(workload=WORKLOAD, deadline_s=0.02))
            done = s.wait(job.id, timeout=30)
            assert done.state == JOB_TIMEOUT
            assert done.error
        finally:
            s.shutdown()
        assert_store_is_sound(tmp_path / "oracle.jsonl")

    def test_queued_job_with_passed_deadline_never_compiles(self):
        ran = []

        def tattling(request, cancel, cache):
            ran.append(request)  # pragma: no cover - must not happen
            return default_compile_fn(request, cancel, cache)

        s = JobScheduler(workers=1, compile_fn=tattling, paused=True)
        try:
            job, _ = s.submit(
                CompileRequest(workload=WORKLOAD, deadline_s=0.01))
            time.sleep(0.05)  # deadline passes while queued
            assert job.state == JOB_QUEUED
            s.resume()
            done = s.wait(job.id, timeout=10)
            assert done.state == JOB_TIMEOUT
            assert ran == []
        finally:
            s.shutdown()
