"""Cluster chaos proofs: kill a node mid-job, lose the cache tier,
drain under concurrent submitters.

These are the acceptance tests behind ``docs/cluster.md``'s failure
matrix:

* a worker killed while owning accepted jobs loses nothing — the router
  fails the jobs over and every one completes ``degraded: false`` with
  selections **byte-identical** to a single-node run (compiles are
  deterministic pure functions of the request, which is what makes the
  re-dispatch sound);
* a total cache-tier outage (the seeded ``cachetier-outage`` builtin
  plan) never fails a compile — the tier is an accelerator, not a
  dependency;
* graceful shutdown under a storm of concurrent submitters never
  strands an accepted job, and the ``/metrics`` counters balance.
"""

import threading

import pytest

import repro.workloads  # noqa: F401 - populate the registry
from repro import faults
from repro.cluster import CacheTierServer, ClusterRouter
from repro.errors import ServiceError
from repro.faults import FaultPlan, FaultRule
from repro.service import CompileRequest, CompileServer, ServiceClient
from repro.service.coalesce import request_key
from repro.service.protocol import JOB_DONE, TERMINAL_STATES


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def _listings(view):
    """The selection fingerprint: every program listing, in order."""
    assert view.result is not None
    return [p["listing"] for p in view.result.programs]


def _kill(server: CompileServer) -> None:
    """Make a worker vanish from the network without draining it — the
    in-process equivalent of SIGKILL for everything the router can see."""
    server._httpd.shutdown()
    server._httpd.server_close()


class TestKillANodeMidJob:
    def test_jobs_on_killed_node_fail_over_byte_identical(self):
        # The reference: the same compile on one plain single-node server.
        request = CompileRequest(workload="mul")
        single = CompileServer(workers=1, quiet=True).start()
        try:
            reference = ServiceClient(single.url).compile(request, timeout=60)
        finally:
            single.shutdown()
        assert reference.state == JOB_DONE

        nodes = {
            "node-a": CompileServer(workers=1, quiet=True,
                                    node_id="node-a").start(),
            "node-b": CompileServer(workers=1, quiet=True,
                                    node_id="node-b").start(),
        }
        router = ClusterRouter(
            {name: server.url for name, server in nodes.items()},
            quiet=True, health_interval_s=30.0,  # probes driven by hand
        ).start()
        try:
            client = ServiceClient(router.url)
            # Find the key's home node and accept the job there — but
            # paused, so the kill lands while the job is still owned.
            home = next(iter(router._ring.walk(request_key(request))))
            victim = nodes[home.node_id]
            victim.scheduler.pause()
            submitted = client.submit(request)
            assert submitted["node_id"] == home.node_id

            _kill(victim)
            for _ in range(2):
                router.probe_all()
            assert router.health()["eligible_nodes"] == 1

            view = client.wait(submitted["id"], timeout=60)
            assert view.state == JOB_DONE
            assert view.degraded is False
            assert view.id == submitted["id"]  # public id survived
            assert view.node_id != home.node_id  # ran on the survivor
            assert _listings(view) == _listings(reference)
            metrics = router.metrics.as_dict()
            assert metrics["repro_router_failovers_total"] == 1
        finally:
            router.shutdown()
            for server in nodes.values():
                server.scheduler.shutdown(drain=False, timeout=5)
                try:
                    _kill(server)
                except OSError:
                    pass

    def test_failover_respects_exhausted_deadline(self):
        nodes = {
            "node-a": CompileServer(workers=1, quiet=True,
                                    node_id="node-a").start(),
            "node-b": CompileServer(workers=1, quiet=True,
                                    node_id="node-b").start(),
        }
        router = ClusterRouter(
            {name: server.url for name, server in nodes.items()},
            quiet=True, health_interval_s=30.0,
        ).start()
        try:
            request = CompileRequest(workload="mul", deadline_s=0.05)
            home = next(iter(router._ring.walk(request_key(request))))
            victim = nodes[home.node_id]
            victim.scheduler.pause()
            client = ServiceClient(router.url)
            submitted = client.submit(request)
            _kill(victim)
            import time

            time.sleep(0.06)  # burn the whole budget while stranded
            view = client.wait(submitted["id"], timeout=10)
            assert view.state == "timeout"
            assert "deadline exhausted" in (view.error or "")
            metrics = router.metrics.as_dict()
            assert metrics["repro_router_deadline_exhausted_total"] == 1
            assert metrics.get("repro_router_failovers_total", 0) == 0
        finally:
            router.shutdown()
            for server in nodes.values():
                server.scheduler.shutdown(drain=False, timeout=5)
                try:
                    _kill(server)
                except OSError:
                    pass


class TestCacheTierOutage:
    def test_seeded_outage_plan_never_fails_a_compile(self):
        tier = CacheTierServer().start()
        server = CompileServer(workers=1, quiet=True, node_id="solo",
                               cache_tier=tier.endpoint).start()
        try:
            client = ServiceClient(server.url)
            with faults.injected(faults.builtin_plans()["cachetier-outage"]):
                for workload in ("mul", "add"):
                    view = client.compile(CompileRequest(workload=workload),
                                          timeout=60)
                    assert view.state == JOB_DONE
                    assert view.degraded is False
        finally:
            server.shutdown()
            tier.shutdown()

    def test_tier_dead_from_the_start_never_fails_a_compile(self):
        # No tier ever listened on this address: every tier interaction
        # is an immediate connection failure.
        server = CompileServer(workers=1, quiet=True, node_id="solo",
                               cache_tier="127.0.0.1:9").start()
        try:
            view = ServiceClient(server.url).compile(
                CompileRequest(workload="mul"), timeout=60
            )
            assert view.state == JOB_DONE
            assert view.degraded is False
        finally:
            server.shutdown()


class TestDrainUnderConcurrentSubmitters:
    def test_drain_never_strands_an_accepted_job(self):
        from repro.service.scheduler import CompileResult

        def slow_compile(request, cancel, cache):
            return CompileResult(workload=request.workload,
                                 backend=request.backend, total_cycles=1)

        # Seeded latency makes the drain window non-trivial without
        # making the test slow or flaky.
        plan = FaultPlan(name="drain-storm", seed=11, rules=[
            FaultRule(site=faults.SITE_SCHEDULER_JOB, kind="latency",
                      latency_s=0.01, every=2),
        ])
        server = CompileServer(workers=2, quiet=True,
                               compile_fn=slow_compile, grace_s=0.0).start()
        client_urls = server.url
        accepted: list = []
        accepted_lock = threading.Lock()
        stop = threading.Event()

        def submitter(i: int) -> None:
            client = ServiceClient(client_urls)
            n = 0
            while not stop.is_set():
                n += 1
                try:
                    reply = client.submit(
                        CompileRequest(workload="mul", width=64 + (n % 7),
                                       idempotency_key=f"storm-{i}-{n}"),
                        honor_retry_after=False,
                    )
                except ServiceError:
                    return  # admission closed under us: expected
                with accepted_lock:
                    accepted.append(reply["id"])

        with faults.injected(plan):
            threads = [threading.Thread(target=submitter, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            import time

            time.sleep(0.15)  # let the storm build a queue
            clean = server.shutdown()
            stop.set()
            for t in threads:
                t.join(timeout=10)

        assert clean  # the drain finished; nothing was abandoned
        assert accepted  # the storm actually landed submissions
        # Every accepted job reached a terminal state before the
        # scheduler stopped.
        for job_id in set(accepted):
            job = server.scheduler.get(job_id)
            assert job is not None and job.state in TERMINAL_STATES
        # And the ledger balances: everything admitted is accounted for.
        metrics = server.scheduler.metrics.as_dict()
        terminal = sum(metrics.get(name, 0) for name in (
            "repro_jobs_completed_total", "repro_jobs_failed_total",
            "repro_jobs_cancelled_total", "repro_jobs_timeout_total",
        ))
        assert metrics["repro_jobs_submitted_total"] == terminal
        assert metrics["repro_queue_depth"] == 0
        assert metrics["repro_jobs_inflight"] == 0
